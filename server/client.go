package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/irsgo/irs/internal/wire"
)

// Client is the typed Go client of the irsd protocol. It is safe for
// concurrent use; the zero HTTPClient means the dedicated pooled client
// NewClient builds (http.DefaultClient caps idle connections per host at
// 2, which makes every concurrency-N workload past N=2 re-dial
// constantly — see newPooledHTTPClient).
type Client struct {
	base string
	// HTTPClient overrides the transport (timeouts, connection pooling).
	HTTPClient *http.Client
	// Binary switches Sample/SampleAppend/InsertKeys/InsertItems to the
	// compact binary frames (Content-Type application/x-irs-bin) with
	// pooled encode/decode buffers; the remaining endpoints, and every
	// error response, stay JSON — errors.Is works identically either way.
	Binary bool
}

// NewClient returns a client for the daemon at base, e.g.
// "http://127.0.0.1:8080".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), HTTPClient: newPooledHTTPClient()}
}

// newPooledHTTPClient builds the client's default transport. The stock
// http.DefaultTransport allows only DefaultMaxIdleConnsPerHost (2) idle
// connections to one host: a 64-way concurrent caller keeps 64 connections
// busy, but the moment a burst ends, all but 2 are torn down and the next
// burst pays full TCP re-dial latency — which polluted the committed
// BENCH_serving latency numbers. A typed client talks to exactly one host,
// so idle-per-host may match the total idle pool.
func newPooledHTTPClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr}
}

// APIError is a decoded irsd error response. Unwrap yields the matching
// sentinel (ErrOverloaded, ErrEmptyRange, ...), so
// errors.Is(err, server.ErrOverloaded) works across the wire.
type APIError struct {
	Code    string // wire code, e.g. "overloaded"
	Message string // human-readable server message
	Status  int    // HTTP status
}

func (e *APIError) Error() string {
	return fmt.Sprintf("irsd: %s (http %d): %s", e.Code, e.Status, e.Message)
}

func (e *APIError) Unwrap() error { return wire.CodeToErr[e.Code] }

// Sample requests t independent samples from [lo, hi] of dataset (empty
// selects the daemon's sole dataset).
func (c *Client) Sample(ctx context.Context, dataset string, lo, hi float64, t int) ([]float64, error) {
	return c.SampleAppend(ctx, dataset, nil, lo, hi, t)
}

// SampleAppend is Sample appending into dst, so callers issuing many
// requests can reuse one result buffer. On error dst is returned
// unchanged.
func (c *Client) SampleAppend(ctx context.Context, dataset string, dst []float64, lo, hi float64, t int) ([]float64, error) {
	if c.Binary {
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		frame, err := wire.EncodeSampleRequest((*buf)[:0], wire.SampleReq{Dataset: dataset, Lo: lo, Hi: hi, T: t})
		if err != nil {
			return dst, err
		}
		*buf = frame
		body, err := c.postFrame(ctx, "/sample", frame, buf)
		if err != nil {
			return dst, err
		}
		return wire.DecodeSampleResponse(body, dst)
	}
	var resp SampleResponse
	if err := c.post(ctx, "/sample", SampleRequest{Dataset: dataset, Lo: lo, Hi: hi, T: t}, &resp); err != nil {
		return dst, err
	}
	if dst == nil {
		return resp.Samples, nil // plain Sample: hand over the decoded slice
	}
	return append(dst, resp.Samples...), nil
}

// InsertKeys stores keys with unit weight, returning how many were stored.
func (c *Client) InsertKeys(ctx context.Context, dataset string, keys []float64) (int, error) {
	if c.Binary {
		return c.insertBinary(ctx, wire.InsertReq{Dataset: dataset, Keys: keys})
	}
	var resp InsertResponse
	err := c.post(ctx, "/insert", InsertRequest{Dataset: dataset, Keys: keys}, &resp)
	return resp.Inserted, err
}

// InsertItems stores weighted items, returning how many were stored.
func (c *Client) InsertItems(ctx context.Context, dataset string, items []Item) (int, error) {
	if c.Binary {
		return c.insertBinary(ctx, wire.InsertReq{Dataset: dataset, Items: items})
	}
	var resp InsertResponse
	err := c.post(ctx, "/insert", InsertRequest{Dataset: dataset, Items: items}, &resp)
	return resp.Inserted, err
}

func (c *Client) insertBinary(ctx context.Context, req wire.InsertReq) (int, error) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	frame, err := wire.EncodeInsertRequest((*buf)[:0], req)
	if err != nil {
		return 0, err
	}
	*buf = frame
	body, err := c.postFrame(ctx, "/insert", frame, buf)
	if err != nil {
		return 0, err
	}
	return wire.DecodeInsertResponse(body)
}

// RangeStats returns the in-range key count and sampling mass of [lo, hi]
// — the probe the cluster router splits its cross-partition multinomial
// with. Binary clients carry it as a rangestats frame.
func (c *Client) RangeStats(ctx context.Context, dataset string, lo, hi float64) (int, float64, error) {
	if c.Binary {
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		frame, err := wire.EncodeRangeStatsRequest((*buf)[:0], wire.RangeStatsReq{Dataset: dataset, Lo: lo, Hi: hi})
		if err != nil {
			return 0, 0, err
		}
		*buf = frame
		body, err := c.postFrame(ctx, "/rangestats", frame, buf)
		if err != nil {
			return 0, 0, err
		}
		return wire.DecodeRangeStatsResponse(body)
	}
	var resp RangeStatsResponse
	if err := c.post(ctx, "/rangestats", RangeStatsRequest{Dataset: dataset, Lo: lo, Hi: hi}, &resp); err != nil {
		return 0, 0, err
	}
	return resp.Count, resp.Mass, nil
}

// Delete removes one occurrence of each key, returning how many were
// present and removed.
func (c *Client) Delete(ctx context.Context, dataset string, keys []float64) (int, error) {
	var resp DeleteResponse
	err := c.post(ctx, "/delete", DeleteRequest{Dataset: dataset, Keys: keys}, &resp)
	return resp.Removed, err
}

// Update sets the weight of one occurrence of each item's key on a
// weighted dataset, returning how many keys were present and re-weighted.
// Unweighted datasets answer ErrNotWeighted.
func (c *Client) Update(ctx context.Context, dataset string, items []Item) (int, error) {
	var resp UpdateResponse
	err := c.post(ctx, "/update", UpdateRequest{Dataset: dataset, Items: items}, &resp)
	return resp.Updated, err
}

// Snapshot asks the daemon to take a point-in-time snapshot of a durable
// dataset (compacting its WAL), returning the covered WAL sequence and
// item count. Memory-only datasets answer ErrNotDurable.
func (c *Client) Snapshot(ctx context.Context, dataset string) (SnapshotResponse, error) {
	var resp SnapshotResponse
	err := c.post(ctx, "/snapshot", SnapshotRequest{Dataset: dataset}, &resp)
	return resp, err
}

// AddDataset creates a dataset on the daemon at runtime (POST /datasets).
// The daemon builds it through its Provisioner — same shard count, seed
// policy, and durability as a boot-time dataset. A name already registered
// answers ErrDuplicateDataset.
func (c *Client) AddDataset(ctx context.Context, dataset string, weighted bool) error {
	var resp AddDatasetResponse
	return c.post(ctx, "/datasets", AddDatasetRequest{Dataset: dataset, Weighted: weighted}, &resp)
}

// DropDataset drains and unregisters a dataset (DELETE /datasets/{name}).
// Requests the dataset had already accepted are answered before the drop
// returns; snapshot asks for a final compacting snapshot before its store
// closes (ignored for memory-only datasets). Absent names answer
// ErrUnknownDataset.
func (c *Client) DropDataset(ctx context.Context, dataset string, snapshot bool) error {
	path := "/datasets/" + dataset
	if snapshot {
		path += "?snapshot=true"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+path, nil)
	if err != nil {
		return err
	}
	var resp DropDatasetResponse
	return c.do(req, &resp)
}

// ListDatasets fetches the registry listing (GET /datasets): each
// dataset's name, kind, lifecycle state, and durability.
func (c *Client) ListDatasets(ctx context.Context) ([]DatasetInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/datasets", nil)
	if err != nil {
		return nil, err
	}
	var resp ListDatasetsResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// Stats fetches the serving snapshot of every dataset.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return out, err
	}
	return out, c.do(req, &out)
}

// Close releases the client's idle connections. The client stays usable —
// later requests simply re-dial — so Close is about returning pooled
// sockets promptly, matching the irsnet client's surface for the unified
// client interface.
func (c *Client) Close() error {
	hc := c.HTTPClient
	if hc == nil {
		hc = sharedPooledClient
	}
	hc.CloseIdleConnections()
	return nil
}

// post marshals in, POSTs it, and decodes the 2xx body into out (or a
// non-2xx body into an *APIError).
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// sharedPooledClient answers the nil-HTTPClient fallback for Client values
// assembled without NewClient.
var sharedPooledClient = newPooledHTTPClient()

func (c *Client) do(req *http.Request, out any) error {
	hc := c.HTTPClient
	if hc == nil {
		hc = sharedPooledClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError reads a non-2xx response's JSON error envelope — the
// error shape is JSON on both encodings.
func decodeAPIError(resp *http.Response) error {
	var envelope ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code == "" {
		return &APIError{Code: "internal", Message: "undecodable error body", Status: resp.StatusCode}
	}
	return &APIError{Code: envelope.Error.Code, Message: envelope.Error.Message, Status: resp.StatusCode}
}

// postFrame POSTs one binary request frame and reads the binary response
// body back into the caller's pooled buffer. The request frame may share
// that buffer: the transport has fully consumed the body by the time the
// response is read into it.
func (c *Client) postFrame(ctx context.Context, path string, frame []byte, buf *[]byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	hc := c.HTTPClient
	if hc == nil {
		hc = sharedPooledClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	b, err := wire.ReadAllInto(resp.Body, (*buf)[:0])
	*buf = b
	if err != nil {
		return nil, err
	}
	return b, nil
}
