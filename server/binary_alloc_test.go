package server

import (
	"testing"
)

// TestBinaryCodecZeroAllocs pins the pooled encode/decode paths: framing a
// sample request, decoding it, framing the response, and decoding that
// back must all run allocation-free once the caller's buffers are warm —
// the property that keeps the binary wire path from re-introducing the
// per-request garbage the serving core just eliminated.
func TestBinaryCodecZeroAllocs(t *testing.T) {
	samples := make([]float64, 256)
	for i := range samples {
		samples[i] = float64(i) * 1.5
	}
	frame := make([]byte, 0, 4096)
	dst := make([]float64, 0, 256)
	var err error

	allocs := testing.AllocsPerRun(200, func() {
		frame, err = encodeSampleRequest(frame[:0], binSampleReq{Dataset: "events", Lo: 1, Hi: 2, T: 256})
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("encodeSampleRequest allocates %.1f/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(200, func() {
		frame = encodeSampleResponse(frame[:0], samples)
	})
	if allocs != 0 {
		t.Errorf("encodeSampleResponse allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		dst, err = decodeSampleResponse(frame, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("decodeSampleResponse allocates %.1f/op, want 0", allocs)
	}
	if len(dst) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(dst), len(samples))
	}
	for i := range dst {
		if dst[i] != samples[i] {
			t.Fatalf("sample %d: %v != %v", i, dst[i], samples[i])
		}
	}

	// The sample request decode allocates only its dataset-name string (one
	// small allocation, amortized by nothing — names are a few bytes).
	req := binSampleReq{Dataset: "events", Lo: -3, Hi: 9, T: 17}
	frame, err = encodeSampleRequest(frame[:0], req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSampleRequest(frame)
	if err != nil || got != req {
		t.Fatalf("round trip: %+v, %v (want %+v)", got, err, req)
	}
	allocs = testing.AllocsPerRun(200, func() {
		got, err = decodeSampleRequest(frame)
	})
	if allocs > 1 {
		t.Errorf("decodeSampleRequest allocates %.1f/op, want <= 1 (the name string)", allocs)
	}
}

// TestBinaryInsertCodecRoundTrip covers the insert frames, including the
// negative-T-style edge of empty key/item sections.
func TestBinaryInsertCodecRoundTrip(t *testing.T) {
	for _, req := range []binInsertReq{
		{Dataset: "d", Keys: []float64{1, 2, 3}},
		{Dataset: "", Items: []Item{{Key: 4, Weight: 0.5}, {Key: 5, Weight: 2}}},
		{Dataset: "both", Keys: []float64{9}, Items: []Item{{Key: 10, Weight: 7}}},
		{Dataset: "empty"},
	} {
		frame, err := encodeInsertRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeInsertRequest(frame, nil, nil)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if got.Dataset != req.Dataset || len(got.Keys) != len(req.Keys) || len(got.Items) != len(req.Items) {
			t.Fatalf("round trip: %+v -> %+v", req, got)
		}
		for i := range req.Keys {
			if got.Keys[i] != req.Keys[i] {
				t.Fatalf("key %d: %v != %v", i, got.Keys[i], req.Keys[i])
			}
		}
		for i := range req.Items {
			if got.Items[i] != req.Items[i] {
				t.Fatalf("item %d: %+v != %+v", i, got.Items[i], req.Items[i])
			}
		}
	}
}
