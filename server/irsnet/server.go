package irsnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/irsgo/irs/internal/metrics"
	"github.com/irsgo/irs/internal/wire"
	"github.com/irsgo/irs/server"
)

// Server serves the irsnet protocol over raw TCP connections, submitting
// every decoded request asynchronously into the same coalescing core the
// HTTP layer wraps. Per connection it runs exactly two goroutines: a
// reader that decodes messages and submits them (never waiting for a
// flush, so pipelined requests behind a slow batch are not stalled), and
// a writer that drains an eventbox queue of encoded responses, batching
// them into large writes. The steady-state per-request path allocates
// nothing: message scratch, result buffers, and the Reply callbacks
// delivering flush results are all pooled, and dataset names are interned
// off the request frames.
type Server struct {
	backend *server.Server
	opts    ServerOptions
	names   internTable
	inst    instruments

	mu     sync.Mutex
	lis    net.Listener
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup // one count per live connection handler
}

// instruments is the transport's hot-path-safe instrumentation: atomic,
// allocation-free recording (the TCP request path is pinned at 0
// allocs/request; these must not break that), scraped through
// AppendMetrics.
type instruments struct {
	connsOpen  metrics.Gauge
	connsTotal metrics.Counter
	inflight   metrics.Gauge
	reqSeconds metrics.DurationHistogram
}

// AppendMetrics implements server.MetricsAppender: it renders the TCP
// transport's Prometheus families (connection counts, in-flight
// requests, request latency) for concatenation into the backend's
// /metrics exposition. Register with backend.RegisterMetrics.
func (s *Server) AppendMetrics(dst []byte) []byte {
	b := metrics.NewBuilder(dst)
	b.Family("irsd_tcp_connections_open", "TCP connections currently open.", "gauge")
	b.Val("irsd_tcp_connections_open", float64(s.inst.connsOpen.Load()))
	b.Family("irsd_tcp_connections_opened_total", "TCP connections accepted since boot.", "counter")
	b.Val("irsd_tcp_connections_opened_total", float64(s.inst.connsTotal.Load()))
	b.Family("irsd_tcp_inflight_requests", "Requests submitted to the core and not yet answered.", "gauge")
	b.Val("irsd_tcp_inflight_requests", float64(s.inst.inflight.Load()))
	b.Family("irsd_tcp_request_duration_seconds", "TCP request latency, dispatch to response enqueue.", "histogram")
	b.Histogram("irsd_tcp_request_duration_seconds", s.inst.reqSeconds.Snapshot())
	return b.Bytes()
}

// DefaultReadBufferSize is each connection's buffered-reader size when
// ServerOptions leaves it zero.
const DefaultReadBufferSize = 32 << 10

// ServerOptions tunes per-connection resources.
type ServerOptions struct {
	// ReadBufferSize is the per-connection read buffer in bytes (default
	// DefaultReadBufferSize). Few fat-insert connections amortize syscalls
	// better with a bigger buffer; many mostly-idle connections waste less
	// memory with a smaller one.
	ReadBufferSize int
}

// NewServer returns a Server answering requests from backend's datasets
// with default options.
func NewServer(backend *server.Server) *Server {
	return NewServerOpts(backend, ServerOptions{})
}

// NewServerOpts is NewServer with explicit per-connection options.
func NewServerOpts(backend *server.Server, opts ServerOptions) *Server {
	if opts.ReadBufferSize <= 0 {
		opts.ReadBufferSize = DefaultReadBufferSize
	}
	s := &Server{backend: backend, opts: opts, conns: make(map[*conn]struct{})}
	s.names.m = make(map[string]string)
	return s
}

// Serve accepts connections on l until Shutdown (returning nil) or an
// accept error (returning it). The listener is closed either way.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return nil
	}
	s.lis = l
	s.mu.Unlock()
	defer l.Close()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := &conn{srv: s, nc: nc, q: newWriteQueue()}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.inst.connsTotal.Inc()
		s.inst.connsOpen.Add(1)
		go func() {
			defer s.wg.Done()
			c.handle()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			s.inst.connsOpen.Add(-1)
		}()
	}
}

// Shutdown gracefully stops the server: it closes the listener, unblocks
// every connection's reader (no further requests are accepted), and waits
// for requests already read to be answered and their responses written.
// If ctx expires first, remaining connections are force-closed and
// ctx.Err() is returned. Like http.Server.Shutdown, it does not close the
// serving core — close that after Shutdown returns for a full drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	for _, c := range conns {
		// A deadline in the past fails the reader's current and future
		// Reads without touching writes: in-flight requests still answer.
		_ = c.nc.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.nc.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// conn is one accepted connection: its reader state plus the write queue
// its responses funnel through.
type conn struct {
	srv      *Server
	nc       net.Conn
	q        *writeQueue
	inflight sync.WaitGroup // requests submitted but not yet delivered
	readBuf  []byte         // frame scratch, reused across requests
}

// handle runs the connection to completion. Teardown order is the drain
// contract: the reader stops first, then every submitted request delivers
// (the core answers all accepted work), then the queue closes so the
// writer drains what was enqueued, and only then does the socket close.
func (c *conn) handle() {
	wdone := make(chan struct{})
	go c.writeLoop(wdone)
	c.readLoop()
	c.inflight.Wait()
	c.q.close()
	<-wdone
	_ = c.nc.Close()
}

// maxRetainedRead bounds the frame scratch kept between requests, so one
// outsized insert does not pin megabytes per connection for its lifetime.
const maxRetainedRead = 1 << 20

// readLoop decodes messages and dispatches them until the connection
// fails, closes, or a malformed envelope desynchronizes the stream.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, c.srv.opts.ReadBufferSize)
	var hdr [reqHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		id := binary.LittleEndian.Uint64(hdr[4:12])
		if n < minRequestLen || n > MaxMessageBytes {
			return // envelope out of sync: there is no frame boundary to recover at
		}
		frameLen := int(n) - 8
		if cap(c.readBuf) < frameLen {
			c.readBuf = make([]byte, frameLen)
		}
		frame := c.readBuf[:frameLen]
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		c.dispatch(id, frame)
		if cap(c.readBuf) > maxRetainedRead {
			c.readBuf = nil
		}
	}
}

// dispatch decodes one request frame and submits it. Everything the
// request needs afterwards — the interned dataset name, the query bounds,
// the copied insert items — survives the frame buffer, so the reader can
// reuse it for the next message immediately; the submitted work answers
// through a pooled Reply that encodes and enqueues the response from the
// delivering flusher goroutine.
func (c *conn) dispatch(id uint64, frame []byte) {
	switch frame[0] {
	case wire.FrameSample:
		raw, err := wire.DecodeSampleRequestRaw(frame)
		if err != nil {
			c.sendErr(id, err)
			return
		}
		name := c.srv.names.intern(raw.Name)
		p := samplePool.Get().(*pendingSample)
		dst := wire.GetF64()
		p.c, p.id, p.dst = c, id, dst
		p.start = time.Now()
		c.inflight.Add(1)
		c.srv.inst.inflight.Add(1)
		if err := c.srv.backend.SampleAsync(name, (*dst)[:0], raw.Lo, raw.Hi, raw.T, p); err != nil {
			c.inflight.Done()
			c.srv.inst.inflight.Add(-1)
			p.c, p.dst = nil, nil
			samplePool.Put(p)
			wire.PutF64(dst)
			c.sendErr(id, err)
		}
	case wire.FrameInsert:
		items := wire.GetItems()
		rawName, all, err := wire.DecodeInsertRequestItems(frame, (*items)[:0])
		*items = all
		if err != nil {
			wire.PutItems(items)
			c.sendErr(id, err)
			return
		}
		name := c.srv.names.intern(rawName)
		p := insertPool.Get().(*pendingInsert)
		p.c, p.id, p.items = c, id, items
		p.start = time.Now()
		c.inflight.Add(1)
		c.srv.inst.inflight.Add(1)
		if err := c.srv.backend.InsertAsync(name, all, p); err != nil {
			c.inflight.Done()
			c.srv.inst.inflight.Add(-1)
			p.c, p.items = nil, nil
			insertPool.Put(p)
			wire.PutItems(items)
			c.sendErr(id, err)
		}
	// The cold-path frames (delete, update, stats, rangestats) each run on
	// their own goroutine against the backend's synchronous methods: they
	// are rare (operational tooling, router probes), so a goroutine per
	// request is the right trade against threading four more shapes through
	// the async core — and the reader still never parks behind one.
	case wire.FrameDelete:
		keys := wire.GetF64()
		rawName, ks, err := wire.DecodeDeleteRequest(frame, (*keys)[:0])
		*keys = ks
		if err != nil {
			wire.PutF64(keys)
			c.sendErr(id, err)
			return
		}
		name := c.srv.names.intern(rawName)
		c.startCold(id, func(b []byte) ([]byte, error) {
			n, err := c.srv.backend.Delete(name, *keys)
			wire.PutF64(keys)
			if err != nil {
				return b, err
			}
			return wire.EncodeDeleteResponse(b, n), nil
		})
	case wire.FrameUpdate:
		items := wire.GetItems()
		rawName, its, err := wire.DecodeUpdateRequest(frame, (*items)[:0])
		*items = its
		if err != nil {
			wire.PutItems(items)
			c.sendErr(id, err)
			return
		}
		name := c.srv.names.intern(rawName)
		c.startCold(id, func(b []byte) ([]byte, error) {
			n, err := c.srv.backend.Update(name, *items)
			wire.PutItems(items)
			if err != nil {
				return b, err
			}
			return wire.EncodeUpdateResponse(b, n), nil
		})
	case wire.FrameStats:
		if err := wire.DecodeStatsRequest(frame); err != nil {
			c.sendErr(id, err)
			return
		}
		c.startCold(id, func(b []byte) ([]byte, error) {
			doc, err := json.Marshal(c.srv.backend.Stats())
			if err != nil {
				return b, err
			}
			return append(b, doc...), nil
		})
	case wire.FrameRangeStats:
		rawName, lo, hi, err := wire.DecodeRangeStatsRequest(frame)
		if err != nil {
			c.sendErr(id, err)
			return
		}
		name := c.srv.names.intern(rawName)
		c.startCold(id, func(b []byte) ([]byte, error) {
			n, mass, err := c.srv.backend.RangeStats(name, lo, hi)
			if err != nil {
				return b, err
			}
			return wire.EncodeRangeStatsResponse(b, n, mass), nil
		})
	default:
		c.sendErr(id, fmt.Errorf("%w: unknown frame kind 0x%02x", wire.ErrFrame, frame[0]))
	}
}

// startCold answers one cold-path request on its own goroutine. run
// appends the success payload to b (the prepared response envelope) and is
// responsible for recycling any pooled buffers it captured; on error the
// envelope is discarded and the error response takes its place.
func (c *conn) startCold(id uint64, run func(b []byte) ([]byte, error)) {
	c.inflight.Add(1)
	c.srv.inst.inflight.Add(1)
	go func() {
		defer c.inflight.Done()
		start := time.Now()
		buf := wire.GetBuf()
		b := (*buf)[:0]
		b = wire.AppendU32(b, 0) // length, patched below
		b = wire.AppendU64(b, id)
		b = append(b, statusOK)
		b, err := run(b)
		if err != nil {
			wire.PutBuf(buf)
			c.sendErr(id, err)
		} else {
			binary.LittleEndian.PutUint32(b[0:4], uint32(len(b)-4))
			*buf = b
			c.send(buf)
		}
		c.srv.inst.reqSeconds.Observe(time.Since(start))
		c.srv.inst.inflight.Add(-1)
	}()
}

// sendErr encodes and enqueues one error response. Errors are off the hot
// path; this path may allocate (the message string).
func (c *conn) sendErr(id uint64, err error) {
	code, status := wire.ErrCode(err)
	msg := err.Error()
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	buf := wire.GetBuf()
	b := (*buf)[:0]
	b = wire.AppendU32(b, uint32(minResponseLen+2+1+len(code)+2+len(msg)))
	b = wire.AppendU64(b, id)
	b = append(b, statusErr)
	b = wire.EncodeError(b, code, status, msg)
	*buf = b
	c.send(buf)
}

// send hands buf to the writer; ownership transfers on success. After the
// queue closes (connection teardown) the response is dropped and the
// buffer recycled — the peer is gone.
func (c *conn) send(buf *[]byte) {
	if !c.q.push(buf) {
		wire.PutBuf(buf)
	}
}

// writeLoop drains the eventbox queue into the socket: every swapped
// batch goes out as one gathered write (net.Buffers → writev), so bursts
// of pipelined responses cost one syscall with no intermediate copy — the
// bufio writer this replaces copied every response into its own buffer
// first. On a write error it keeps draining (recycling buffers so
// producers never leak) but stops writing, and closes the socket to
// unblock the reader.
func (c *conn) writeLoop(done chan struct{}) {
	defer close(done)
	// iov is the reused backing array for the gathered write; sending is
	// the value WriteTo is invoked on. It lives outside the loop because
	// WriteTo's pointer receiver escapes into the poll layer's
	// buffersWriter interface — hoisting it makes that one heap cell per
	// connection instead of one allocation per batch.
	var iov, sending net.Buffers
	var spare []*[]byte
	failed := false
	for {
		batch, closed := c.q.swap(spare[:0])
		if len(batch) == 0 {
			spare = batch
			if closed {
				return
			}
			<-c.q.wake
			continue
		}
		if !failed {
			var err error
			if len(batch) == 1 {
				// A lone response takes the plain-Write path: same one
				// syscall, none of the iovec assembly.
				_, err = c.nc.Write(*batch[0])
			} else {
				// Rebuild the iovec from index 0 each batch: WriteTo
				// advances the slice it is invoked on (and consumes its
				// entries in place), so only the backing array is
				// reusable, never the advanced value.
				iov = iov[:0]
				for _, b := range batch {
					iov = append(iov, *b)
				}
				sending = iov
				_, err = sending.WriteTo(c.nc)
				clear(iov) // drop references so pooled buffers are not pinned
			}
			if err != nil {
				failed = true
				_ = c.nc.Close()
			}
		}
		for _, b := range batch {
			wire.PutBuf(b)
		}
		spare = batch
	}
}

// pendingSample is one in-flight sample request's Reply: a pooled pointer
// (boxing into the Reply interface without allocating) that encodes the
// response envelope around the delivered samples and enqueues it.
type pendingSample struct {
	c     *conn
	id    uint64
	dst   *[]float64 // pooled result buffer the core appends into
	start time.Time  // dispatch time, for the request-latency histogram
}

var samplePool = sync.Pool{New: func() any { return new(pendingSample) }}

// Deliver implements server.SampleReply; it runs on a core flusher
// goroutine and must only encode and enqueue.
func (p *pendingSample) Deliver(v []float64, err error) {
	c, id := p.c, p.id
	if err != nil {
		c.sendErr(id, err)
	} else {
		buf := wire.GetBuf()
		b := (*buf)[:0]
		b = wire.AppendU32(b, uint32(minResponseLen+4+8*len(v)))
		b = wire.AppendU64(b, id)
		b = append(b, statusOK)
		b = wire.EncodeSampleResponse(b, v)
		*buf = b
		c.send(buf)
		*p.dst = v[:0] // keep the buffer's growth pooled
	}
	c.srv.inst.reqSeconds.Observe(time.Since(p.start))
	c.srv.inst.inflight.Add(-1)
	wire.PutF64(p.dst)
	p.c, p.dst = nil, nil
	samplePool.Put(p)
	c.inflight.Done()
}

// pendingInsert is pendingSample's insert counterpart; it also owns the
// pooled decoded-items buffer until delivery (the core requires the items
// unmutated until then).
type pendingInsert struct {
	c     *conn
	id    uint64
	items *[]wire.Item
	start time.Time // dispatch time, for the request-latency histogram
}

var insertPool = sync.Pool{New: func() any { return new(pendingInsert) }}

// Deliver implements server.InsertReply.
func (p *pendingInsert) Deliver(n int, err error) {
	c, id := p.c, p.id
	if err != nil {
		c.sendErr(id, err)
	} else {
		buf := wire.GetBuf()
		b := (*buf)[:0]
		b = wire.AppendU32(b, uint32(minResponseLen+4))
		b = wire.AppendU64(b, id)
		b = append(b, statusOK)
		b = wire.EncodeInsertResponse(b, n)
		*buf = b
		c.send(buf)
	}
	c.srv.inst.reqSeconds.Observe(time.Since(p.start))
	c.srv.inst.inflight.Add(-1)
	wire.PutItems(p.items)
	p.c, p.items = nil, nil
	insertPool.Put(p)
	c.inflight.Done()
}

// internTable interns dataset names decoded off request frames, so the
// steady-state path hands the core an existing string instead of
// allocating one per request (map lookup by []byte compiles to no
// allocation). It is bounded: a hostile stream of unique names falls back
// to plain allocation instead of growing the table forever.
type internTable struct {
	mu sync.RWMutex
	m  map[string]string
}

const maxInterned = 1024

func (t *internTable) intern(b []byte) string {
	t.mu.RLock()
	s, ok := t.m[string(b)]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	if len(t.m) >= maxInterned {
		return string(b)
	}
	s = string(b)
	t.m[s] = s
	return s
}
