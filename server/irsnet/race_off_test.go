//go:build !race

package irsnet_test

const raceEnabled = false
