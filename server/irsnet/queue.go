package irsnet

import "sync"

// writeQueue hands encoded response buffers from the flusher goroutines
// delivering on a connection to that connection's single writer goroutine.
// It is an eventbox, not a channel: producers append under a mutex and do
// a non-blocking send on a 1-buffered wake channel, the consumer swaps the
// whole slice out and drains it. Wakeups coalesce — N concurrent
// deliveries cost one slice append each and at most one wakeup — and the
// consumer sees natural batches, so it can write many responses per
// syscall and flush once when the queue runs dry. Neither side ever
// allocates in steady state: the two slices swap back and forth.
type writeQueue struct {
	mu     sync.Mutex
	bufs   []*[]byte
	closed bool
	wake   chan struct{}
}

func newWriteQueue() *writeQueue {
	return &writeQueue{wake: make(chan struct{}, 1)}
}

// push enqueues b and wakes the writer. It reports false — without
// enqueueing — once the queue is closed; the caller keeps ownership of b.
func (q *writeQueue) push(b *[]byte) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.bufs = append(q.bufs, b)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// swap exchanges the queued buffers for spare (an empty slice whose
// capacity is recycled) and reports whether the queue has been closed.
// An empty result with closed set means the writer may exit: close
// happens-after every push it needs to drain.
func (q *writeQueue) swap(spare []*[]byte) ([]*[]byte, bool) {
	q.mu.Lock()
	bufs := q.bufs
	q.bufs = spare
	closed := q.closed
	q.mu.Unlock()
	return bufs, closed
}

// close stops admission and wakes the writer so it can observe the close
// after draining what was already queued.
func (q *writeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
