//go:build race

package irsnet_test

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation (and deliberate sync.Pool Put-dropping) makes
// allocation counts meaningless.
const raceEnabled = true
