package irsnet_test

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/server"
	"github.com/irsgo/irs/server/irsnet"
)

// newBackend builds the standard two-dataset serving backend: unweighted
// "u" (keys 0..n-1) and weighted "w" (keys 0..99, weight k+1), both
// seeded, so sample streams are deterministic under Flushers:1 with
// sequential requests.
func newBackend(t testing.TB, cfg server.Config, n int, seed uint64) *server.Server {
	t.Helper()
	s := server.New(cfg)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := irs.NewConcurrentFromSortedSeeded(keys, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddUnweighted("u", u); err != nil {
		t.Fatal(err)
	}
	w := irs.NewWeightedConcurrent[float64](4, seed)
	items := make([]irs.WeightedItem[float64], 100)
	for i := range items {
		items[i] = irs.WeightedItem[float64]{Key: float64(i), Weight: float64(i + 1)}
	}
	if err := w.InsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWeighted("w", w); err != nil {
		t.Fatal(err)
	}
	return s
}

// startTCP serves s over irsnet on a loopback listener, returning the
// dialable address and a graceful stop.
func startTCP(t testing.TB, s *server.Server) (string, *irsnet.Server, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := irsnet.NewServer(s)
	served := make(chan error, 1)
	go func() { served <- ts.Serve(l) }()
	addr := l.Addr().String()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ts.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return addr, ts, stop
}

// newTCPDaemon is the all-in-one helper: backend + irsnet server + client.
func newTCPDaemon(t testing.TB, cfg server.Config, n int, seed uint64, opts irsnet.Options) (*irsnet.Client, *server.Server, func()) {
	t.Helper()
	s := newBackend(t, cfg, n, seed)
	addr, _, stopTCP := startTCP(t, s)
	cl := irsnet.NewClient(addr, opts)
	return cl, s, func() {
		cl.Close()
		stopTCP()
		s.Close()
	}
}

// TestTCPRoundTrip drives the insert/sample cycle over the persistent
// transport against both dataset kinds.
func TestTCPRoundTrip(t *testing.T) {
	cl, _, stop := newTCPDaemon(t, server.Config{}, 1000, 11, irsnet.Options{})
	defer stop()
	ctx := context.Background()

	if n, err := cl.InsertKeys(ctx, "u", []float64{5000, 5001, 5002}); err != nil || n != 3 {
		t.Fatalf("InsertKeys: %d, %v", n, err)
	}
	out, err := cl.Sample(ctx, "u", 5000, 5002, 12)
	if err != nil || len(out) != 12 {
		t.Fatalf("Sample: %v, %v", out, err)
	}
	for _, k := range out {
		if k < 5000 || k > 5002 {
			t.Fatalf("sample %g out of range", k)
		}
	}
	// SampleAppend reuses the caller's buffer across requests.
	buf := out[:0]
	for i := 0; i < 5; i++ {
		buf, err = cl.SampleAppend(ctx, "u", buf[:0], 5000, 5002, 3)
		if err != nil || len(buf) != 3 {
			t.Fatalf("SampleAppend: %v, %v", buf, err)
		}
	}
	// Weighted inserts carry their weights.
	if n, err := cl.InsertItems(ctx, "w", []server.Item{{Key: 7000, Weight: 1e9}}); err != nil || n != 1 {
		t.Fatalf("InsertItems: %d, %v", n, err)
	}
	wout, err := cl.Sample(ctx, "w", 0, 8000, 50)
	if err != nil {
		t.Fatal(err)
	}
	dominated := 0
	for _, k := range wout {
		if k == 7000 {
			dominated++
		}
	}
	if dominated < 45 {
		t.Fatalf("dominating weight sampled only %d/50 times", dominated)
	}
	// Empty inserts are answered (inline on the server) rather than hung.
	if n, err := cl.InsertKeys(ctx, "u", nil); err != nil || n != 0 {
		t.Fatalf("empty insert: %d, %v", n, err)
	}
}

// TestThreeEncodingsIdenticalSamples extends the fixed-seed equivalence
// pin to the third encoding: JSON over HTTP, binary over HTTP, and binary
// over TCP must produce bit-identical sample streams for the identical
// sequential request sequence against identically seeded daemons.
func TestThreeEncodingsIdenticalSamples(t *testing.T) {
	ctx := context.Background()
	const seed = 99

	type sampler interface {
		InsertKeys(ctx context.Context, dataset string, keys []float64) (int, error)
		InsertItems(ctx context.Context, dataset string, items []server.Item) (int, error)
		Sample(ctx context.Context, dataset string, lo, hi float64, t int) ([]float64, error)
	}
	drive := func(encoding string, cl sampler) [][]float64 {
		var out [][]float64
		for _, ds := range []string{"u", "w"} {
			if n, err := cl.InsertKeys(ctx, ds, []float64{1e4, 1e4 + 1}); err != nil || n != 2 {
				t.Fatalf("insert keys (%s): %d, %v", encoding, n, err)
			}
			if n, err := cl.InsertItems(ctx, ds, []server.Item{{Key: 2e4, Weight: 3.5}}); err != nil || n != 1 {
				t.Fatalf("insert items (%s): %d, %v", encoding, n, err)
			}
			for i := 0; i < 20; i++ {
				samples, err := cl.Sample(ctx, ds, 0, 3e4, 7+i)
				if err != nil {
					t.Fatalf("sample (%s): %v", encoding, err)
				}
				out = append(out, samples)
			}
		}
		return out
	}

	run := func(encoding string) [][]float64 {
		s := newBackend(t, server.Config{Flushers: 1}, 1000, seed)
		defer s.Close()
		switch encoding {
		case "tcp":
			addr, _, stopTCP := startTCP(t, s)
			defer stopTCP()
			cl := irsnet.NewClient(addr, irsnet.Options{Conns: 1})
			defer cl.Close()
			return drive(encoding, cl)
		default:
			ts := httptest.NewServer(s)
			defer ts.Close()
			cl := server.NewClient(ts.URL)
			cl.Binary = encoding == "binary"
			return drive(encoding, cl)
		}
	}

	jsonOut := run("json")
	for _, encoding := range []string{"binary", "tcp"} {
		got := run(encoding)
		if len(got) != len(jsonOut) {
			t.Fatalf("%s: %d responses, want %d", encoding, len(got), len(jsonOut))
		}
		for i := range jsonOut {
			if len(got[i]) != len(jsonOut[i]) {
				t.Fatalf("%s request %d: %d samples, want %d", encoding, i, len(got[i]), len(jsonOut[i]))
			}
			for j := range jsonOut[i] {
				if got[i][j] != jsonOut[i][j] {
					t.Fatalf("%s request %d sample %d: %v, want %v", encoding, i, j, got[i][j], jsonOut[i][j])
				}
			}
		}
	}
}

// TestTCPErrorPaths mirrors the HTTP/binary error-path suite over the
// persistent transport: every typed error arrives as an *server.APIError
// carrying the same wire code and HTTP-compatible status, so errors.Is
// behaves identically across all three encodings.
func TestTCPErrorPaths(t *testing.T) {
	cl, _, stop := newTCPDaemon(t, server.Config{}, 1000, 11, irsnet.Options{})
	defer stop()
	ctx := context.Background()

	cases := []struct {
		name   string
		do     func() error
		want   error
		status int
	}{
		{"inverted range", func() error { _, err := cl.Sample(ctx, "u", 10, 0, 1); return err }, server.ErrInvalidRange, 400},
		{"t=0", func() error { _, err := cl.Sample(ctx, "u", 0, 10, 0); return err }, server.ErrInvalidCount, 400},
		{"t<0", func() error { _, err := cl.Sample(ctx, "u", 0, 10, -1); return err }, server.ErrInvalidCount, 400},
		{"unknown dataset", func() error { _, err := cl.Sample(ctx, "zzz", 0, 10, 1); return err }, server.ErrUnknownDataset, 404},
		{"ambiguous dataset", func() error { _, err := cl.Sample(ctx, "", 0, 10, 1); return err }, server.ErrAmbiguousDataset, 400},
		{"empty range", func() error { _, err := cl.Sample(ctx, "u", 5000, 6000, 1); return err }, server.ErrEmptyRange, 422},
		{"invalid weight", func() error {
			_, err := cl.InsertItems(ctx, "w", []server.Item{{Key: 1, Weight: -1}})
			return err
		}, server.ErrInvalidWeight, 400},
	}
	for _, tc := range cases {
		err := tc.do()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
			continue
		}
		var api *server.APIError
		if !errors.As(err, &api) || api.Status != tc.status {
			t.Errorf("%s: api error = %+v, want status %d", tc.name, api, tc.status)
		}
	}
}

// TestTCPMalformedFrames speaks the raw protocol: malformed frames inside
// a well-formed envelope get a per-request bad_request error response
// (the connection survives), while a malformed envelope kills the
// connection — there is no boundary to resynchronize at.
func TestTCPMalformedFrames(t *testing.T) {
	s := newBackend(t, server.Config{}, 1000, 11)
	defer s.Close()
	addr, _, stopTCP := startTCP(t, s)
	defer stopTCP()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	send := func(id uint64, frame []byte) {
		t.Helper()
		msg := binary.LittleEndian.AppendUint32(nil, uint32(8+len(frame)))
		msg = binary.LittleEndian.AppendUint64(msg, id)
		msg = append(msg, frame...)
		if _, err := nc.Write(msg); err != nil {
			t.Fatal(err)
		}
	}
	readResp := func() (id uint64, status byte, payload []byte) {
		t.Helper()
		var hdr [12]byte
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			t.Fatal(err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		id = binary.LittleEndian.Uint64(hdr[4:12])
		body := make([]byte, n-8)
		if _, err := io.ReadFull(nc, body); err != nil {
			t.Fatal(err)
		}
		return id, body[0], body[1:]
	}

	for i, frame := range [][]byte{
		{0x07},               // unknown kind
		{0x01, 0x05, 'u'},    // truncated name
		{0x01, 0x01, 'u', 1}, // truncated payload
		append([]byte{0x02, 0x01, 'u'}, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4), // hostile count
		append([]byte{0x01, 0x01, 'u'}, make([]byte, 21)...),                // trailing bytes
	} {
		id := uint64(100 + i)
		send(id, frame)
		gotID, status, payload := readResp()
		if gotID != id || status != 0x01 {
			t.Fatalf("frame %x: id=%d status=%d, want id=%d status=1", frame, gotID, status, id)
		}
		// The error payload decodes to bad_request/400 (checked through the
		// typed client elsewhere; here just pin the status field).
		if st := binary.LittleEndian.Uint16(payload[0:2]); st != 400 {
			t.Fatalf("frame %x: http status %d, want 400", frame, st)
		}
	}

	// A well-formed request still works on the same connection.
	good := []byte{0x01, 0x01, 'u'}
	good = binary.LittleEndian.AppendUint64(good, math.Float64bits(0))
	good = binary.LittleEndian.AppendUint64(good, math.Float64bits(999))
	good = binary.LittleEndian.AppendUint32(good, 3)
	send(7, good)
	if id, status, _ := readResp(); id != 7 || status != 0 {
		t.Fatalf("good frame after errors: id=%d status=%d", id, status)
	}

	// Envelope length below the minimum: the server drops the connection.
	if _, err := nc.Write(binary.LittleEndian.AppendUint32(nil, 3)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := nc.Read(one[:]); err == nil {
		t.Fatal("connection survived a malformed envelope")
	}
}

// TestTCPSharedConnPipelining hammers one shared connection from many
// goroutines — samples and inserts interleaved, pipelined, completing out
// of order — and checks every response matches its request. Its real
// value is under -race (CI runs it): any unsynchronized state in the
// write path, pending map, or eventbox queue surfaces here.
func TestTCPSharedConnPipelining(t *testing.T) {
	cl, _, stop := newTCPDaemon(t, server.Config{
		CoalesceWindow: 200 * time.Microsecond,
		MaxBatch:       16,
	}, 2000, 11, irsnet.Options{Conns: 1})
	defer stop()
	ctx := context.Background()

	const goroutines, iters = 8, 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "u"
			if g%2 == 1 {
				name = "w"
			}
			var buf []float64
			for i := 0; i < iters; i++ {
				// Each goroutine samples a distinct sub-range with a
				// distinct t, so a cross-matched response is visible.
				lo, hi := float64(g*10), float64(g*10+9)
				wantT := 1 + (g+i)%7
				var err error
				buf, err = cl.SampleAppend(ctx, name, buf[:0], lo, hi, wantT)
				if err != nil {
					if errors.Is(err, server.ErrOverloaded) || errors.Is(err, server.ErrEmptyRange) {
						continue
					}
					t.Errorf("goroutine %d: sample: %v", g, err)
					return
				}
				if len(buf) != wantT {
					t.Errorf("goroutine %d: got %d samples, want %d", g, len(buf), wantT)
					return
				}
				for _, k := range buf {
					if k < lo || k > hi {
						t.Errorf("goroutine %d: sample %g outside [%g, %g] — responses crossed", g, k, lo, hi)
						return
					}
				}
				if i%10 == 0 {
					if _, err := cl.InsertKeys(ctx, name, []float64{lo + 0.5}); err != nil &&
						!errors.Is(err, server.ErrOverloaded) {
						t.Errorf("goroutine %d: insert: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTCPReconnect kills the server out from under the client — once
// gracefully while idle, once forcibly with requests possibly in flight —
// brings a new one up on the same address, and checks the client
// transparently re-dials. Requests that were in flight during the kill
// may fail with a connection error (the client must not silently retry
// them: the server may have executed the insert); fresh requests must
// succeed.
func TestTCPReconnect(t *testing.T) {
	s := newBackend(t, server.Config{}, 1000, 11)
	defer s.Close()

	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	ts1 := irsnet.NewServer(s)
	done1 := make(chan error, 1)
	go func() { done1 <- ts1.Serve(l1) }()

	cl := irsnet.NewClient(addr, irsnet.Options{Conns: 2})
	defer cl.Close()
	ctx := context.Background()
	if _, err := cl.Sample(ctx, "u", 0, 999, 3); err != nil {
		t.Fatalf("first sample: %v", err)
	}

	// Graceful kill: drain, then the listener port is free again.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	if err := ts1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown 1: %v", err)
	}
	cancel()
	<-done1

	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	ts2 := irsnet.NewServer(s)
	done2 := make(chan error, 1)
	go func() { done2 <- ts2.Serve(l2) }()

	// The client's pooled connections are dead; the next requests must
	// re-dial and succeed.
	for i := 0; i < 4; i++ {
		if _, err := cl.Sample(ctx, "u", 0, 999, 2); err != nil {
			t.Fatalf("sample after graceful restart (%d): %v", i, err)
		}
	}

	// Forcible kill mid-traffic: fire requests while the server is torn
	// down with an expired context (conns force-closed). In-flight
	// requests may fail with transport errors; that is the contract.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := cl.Sample(ctx, "u", 0, 999, 1)
				if err != nil && !isTransportErr(err) {
					t.Errorf("mid-kill sample: unexpected error %v", err)
					return
				}
			}
		}()
	}
	expired, cancel2 := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	err = ts2.Shutdown(expired)
	cancel2()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("force shutdown: %v", err)
	}
	wg.Wait()
	<-done2

	l3, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	ts3 := irsnet.NewServer(s)
	done3 := make(chan error, 1)
	go func() { done3 <- ts3.Serve(l3) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ts3.Shutdown(sctx); err != nil {
			t.Errorf("shutdown 3: %v", err)
		}
		<-done3
	}()

	for i := 0; i < 4; i++ {
		if _, err := cl.Sample(ctx, "u", 0, 999, 2); err != nil {
			t.Fatalf("sample after forced restart (%d): %v", i, err)
		}
	}
}

// isTransportErr reports whether err is a connection-level failure (as
// opposed to a served *server.APIError).
func isTransportErr(err error) bool {
	var api *server.APIError
	return err != nil && !errors.As(err, &api)
}

// TestTCPShutdownDrain: requests in flight when Shutdown begins are
// answered; the listener refuses new connections.
func TestTCPShutdownDrain(t *testing.T) {
	s := newBackend(t, server.Config{CoalesceWindow: time.Millisecond, MaxBatch: 64}, 1000, 11)
	defer s.Close()
	addr, ts, _ := startTCP(t, s)
	cl := irsnet.NewClient(addr, irsnet.Options{Conns: 1})
	defer cl.Close()
	ctx := context.Background()

	const n = 32
	errs := make(chan error, n)
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		go func() {
			started.Done()
			_, err := cl.Sample(ctx, "u", 0, 999, 2)
			errs <- err
		}()
	}
	started.Wait()
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := ts.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < n; i++ {
		// A request that had not yet hit the wire when the reader stopped
		// fails as a transport error; one that was read must be answered.
		if err := <-errs; err != nil && !isTransportErr(err) {
			t.Fatalf("drain: %v", err)
		}
	}
	if _, err := cl.Sample(ctx, "u", 0, 999, 1); err == nil {
		t.Fatal("sample succeeded after shutdown")
	}
}

// TestTCPServerZeroAllocs pins the acceptance bar for the transport: a
// steady-state sample round trip — client encode, server read, decode,
// intern, async submit, coalesced flush, response encode, eventbox write,
// client decode — performs zero heap allocations per request, measured
// process-wide (AllocsPerRun counts mallocs on every goroutine, so the
// server's reader, flusher, and writer are all covered).
func TestTCPServerZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates and drops pool Puts")
	}
	cl, _, stop := newTCPDaemon(t, server.Config{Flushers: 1}, 10_000, 7, irsnet.Options{Conns: 1})
	defer stop()
	ctx := context.Background()

	var dst []float64
	var err error
	for i := 0; i < 64; i++ {
		dst, err = cl.SampleAppend(ctx, "u", dst[:0], 0, 9_999, 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dst, err = cl.SampleAppend(ctx, "u", dst[:0], 0, 9_999, 16)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 16 {
		t.Fatalf("got %d samples", len(dst))
	}
	if allocs != 0 {
		t.Fatalf("steady-state TCP sample round trip allocates %.1f times per request, want 0", allocs)
	}
}

// TestTCPContextCancellation: a cancelled context releases the caller
// promptly, and the connection stays usable for other requests (the
// orphaned response is dropped by ID).
func TestTCPContextCancellation(t *testing.T) {
	cl, _, stop := newTCPDaemon(t, server.Config{
		CoalesceWindow: 5 * time.Millisecond,
	}, 1000, 11, irsnet.Options{Conns: 1})
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Sample(ctx, "u", 0, 999, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sample: %v", err)
	}
	// The connection must still serve.
	if out, err := cl.Sample(context.Background(), "u", 0, 999, 3); err != nil || len(out) != 3 {
		t.Fatalf("sample after cancellation: %v, %v", out, err)
	}
}
