package irsnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/internal/wire"
	"github.com/irsgo/irs/server"
)

// Options configures a Client.
type Options struct {
	// Conns is the connection pool size. Requests round-robin across the
	// pool; each connection pipelines any number of concurrent requests,
	// so a small pool saturates a server — the default of 2 exists mainly
	// so one slow TCP window does not gate everything. <= 0 means 2.
	Conns int
	// DialTimeout bounds each (re)connect. <= 0 means 5s.
	DialTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is the typed client of the irsnet protocol, presenting the same
// surface as the HTTP client (server.Client) — both satisfy the unified
// client interfaces in package client — so callers and test suites can
// treat the transport as a third encoding. It is safe for any number of concurrent goroutines:
// requests are pipelined over a small pool of persistent connections and
// matched to responses by ID, out of order. Connections dial lazily and
// re-dial after breaking; a request that fails before any of its bytes
// were written is retried once on a fresh connection, anything later
// surfaces the connection error (the server may have executed it).
//
// Server-side errors arrive as *server.APIError with the same codes and
// statuses as HTTP, so errors.Is against the server sentinels behaves
// identically across transports.
type Client struct {
	addr string
	opts Options
	next atomic.Uint64 // round-robin slot cursor

	mu     sync.Mutex
	slots  []*clientConn // lazily dialed; nil or broken entries re-dial
	closed bool
}

// NewClient returns a client for the irsnet listener at addr (host:port).
// No connection is made until the first request.
func NewClient(addr string, opts Options) *Client {
	opts = opts.withDefaults()
	return &Client{addr: addr, opts: opts, slots: make([]*clientConn, opts.Conns)}
}

// Close closes every connection; calls in flight fail with a connection
// error wrapping ErrClosed, later calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	slots := c.slots
	c.slots = nil
	c.mu.Unlock()
	for _, cc := range slots {
		if cc != nil {
			cc.fail(ErrClosed)
		}
	}
	return nil
}

// Sample requests t independent samples from [lo, hi] of dataset (empty
// selects the daemon's sole dataset).
func (c *Client) Sample(ctx context.Context, dataset string, lo, hi float64, t int) ([]float64, error) {
	return c.SampleAppend(ctx, dataset, nil, lo, hi, t)
}

// SampleAppend is Sample appending into dst, so callers issuing many
// requests can reuse one result buffer. On error dst is returned
// unchanged.
func (c *Client) SampleAppend(ctx context.Context, dataset string, dst []float64, lo, hi float64, t int) ([]float64, error) {
	cl := getCall()
	cl.kind = callSample
	cl.dst = dst
	buf := wire.GetBuf()
	b := appendReqHeader((*buf)[:0])
	b, err := wire.EncodeSampleRequest(b, wire.SampleReq{Dataset: dataset, Lo: lo, Hi: hi, T: t})
	*buf = b
	if err == nil {
		err = c.roundTrip(ctx, buf, cl)
	}
	wire.PutBuf(buf)
	if err != nil {
		putCall(cl)
		return dst, err
	}
	out, err := cl.samples, cl.err
	putCall(cl)
	if err != nil {
		return dst, err
	}
	return out, nil
}

// InsertKeys stores keys with unit weight, returning how many were stored.
func (c *Client) InsertKeys(ctx context.Context, dataset string, keys []float64) (int, error) {
	return c.insert(ctx, wire.InsertReq{Dataset: dataset, Keys: keys})
}

// InsertItems stores weighted items, returning how many were stored.
func (c *Client) InsertItems(ctx context.Context, dataset string, items []server.Item) (int, error) {
	return c.insert(ctx, wire.InsertReq{Dataset: dataset, Items: items})
}

func (c *Client) insert(ctx context.Context, req wire.InsertReq) (int, error) {
	return c.countCall(ctx, func(b []byte) ([]byte, error) {
		return wire.EncodeInsertRequest(b, req)
	})
}

// Delete removes one occurrence of each key, returning how many were
// present and removed.
func (c *Client) Delete(ctx context.Context, dataset string, keys []float64) (int, error) {
	return c.countCall(ctx, func(b []byte) ([]byte, error) {
		return wire.EncodeDeleteRequest(b, wire.DeleteReq{Dataset: dataset, Keys: keys})
	})
}

// Update sets the weight of one occurrence of each item's key on a
// weighted dataset, returning how many keys were present and re-weighted.
// Unweighted datasets answer ErrNotWeighted.
func (c *Client) Update(ctx context.Context, dataset string, items []server.Item) (int, error) {
	return c.countCall(ctx, func(b []byte) ([]byte, error) {
		return wire.EncodeUpdateRequest(b, wire.UpdateReq{Dataset: dataset, Items: items})
	})
}

// countCall runs one request whose response is a u32 count — the shape
// insert, delete, and update share.
func (c *Client) countCall(ctx context.Context, encode func([]byte) ([]byte, error)) (int, error) {
	cl := getCall()
	buf := wire.GetBuf()
	b := appendReqHeader((*buf)[:0])
	b, err := encode(b)
	*buf = b
	if err == nil {
		err = c.roundTrip(ctx, buf, cl)
	}
	wire.PutBuf(buf)
	if err != nil {
		putCall(cl)
		return 0, err
	}
	n, err := cl.n, cl.err
	putCall(cl)
	return n, err
}

// Stats fetches the serving snapshot of every dataset. The document
// travels as JSON inside a stats frame — it is a scrape, not a hot path.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	cl := getCall()
	cl.kind = callStats
	buf := wire.GetBuf()
	b := appendReqHeader((*buf)[:0])
	b = wire.EncodeStatsRequest(b)
	*buf = b
	err := c.roundTrip(ctx, buf, cl)
	wire.PutBuf(buf)
	if err != nil {
		putCall(cl)
		return server.Stats{}, err
	}
	out, err := cl.stats, cl.err
	cl.stats = server.Stats{}
	putCall(cl)
	return out, err
}

// RangeStats returns the in-range key count and sampling mass of [lo, hi]
// — the probe the cluster router splits its cross-partition multinomial
// with.
func (c *Client) RangeStats(ctx context.Context, dataset string, lo, hi float64) (int, float64, error) {
	cl := getCall()
	cl.kind = callRangeStats
	buf := wire.GetBuf()
	b := appendReqHeader((*buf)[:0])
	b, err := wire.EncodeRangeStatsRequest(b, wire.RangeStatsReq{Dataset: dataset, Lo: lo, Hi: hi})
	*buf = b
	if err == nil {
		err = c.roundTrip(ctx, buf, cl)
	}
	wire.PutBuf(buf)
	if err != nil {
		putCall(cl)
		return 0, 0, err
	}
	n, mass, err := cl.n, cl.mass, cl.err
	putCall(cl)
	return n, mass, err
}

// appendReqHeader reserves the message envelope (length + ID, patched at
// send time) ahead of the frame.
func appendReqHeader(b []byte) []byte {
	b = wire.AppendU32(b, 0)
	return wire.AppendU64(b, 0)
}

// roundTrip sends the assembled message (envelope placeholder + frame) and
// blocks until cl completes or ctx is done. On success cl holds the
// decoded result; the transport-level error (dial, write, broken conn,
// cancellation) is the return value.
func (c *Client) roundTrip(ctx context.Context, buf *[]byte, cl *call) error {
	msg := *buf
	binary.LittleEndian.PutUint32(msg[0:4], uint32(len(msg)-4))
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cc, err := c.conn()
		if err != nil {
			if lastErr == nil {
				lastErr = err
			}
			continue // the slot re-dials on the next pass
		}
		id, ok := cc.register(cl)
		if !ok {
			continue // broke between pick and register; nothing was sent
		}
		binary.LittleEndian.PutUint64(msg[4:12], id)
		cc.wmu.Lock()
		n, werr := cc.nc.Write(msg)
		cc.wmu.Unlock()
		if werr != nil {
			// Fail the connection (delivering a completion to cl along
			// with every other pending call) and consume it so cl is ours
			// again.
			cc.fail(werr)
			<-cl.done
			cl.err = nil
			if n == 0 {
				// None of the request reached the wire: safe to retry even
				// for inserts.
				lastErr = werr
				continue
			}
			return fmt.Errorf("irsnet: connection broken mid-request: %w", werr)
		}
		select {
		case <-cl.done:
			if cl.err != nil {
				if _, ok := cl.err.(*server.APIError); !ok {
					// Transport-level failure (broken connection), not a
					// served error: surface it as the round-trip error.
					err := cl.err
					cl.err = nil
					return err
				}
			}
			return nil
		case <-ctx.Done():
			if cc.deregister(id) {
				// The reader had not picked it up; cl is ours again. The
				// server will still answer — the response is dropped on
				// arrival (unknown ID).
				return ctx.Err()
			}
			<-cl.done // completion already in flight
			return nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("irsnet: no usable connection to %s", c.addr)
	}
	return lastErr
}

// conn picks the next pool slot, dialing it if empty or broken.
func (c *Client) conn() (*clientConn, error) {
	slot := int(c.next.Add(1)-1) % c.opts.Conns
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	cc := c.slots[slot]
	if cc != nil && !cc.isBroken() {
		return cc, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc = &clientConn{nc: nc, pending: make(map[uint64]*call)}
	go cc.readLoop()
	c.slots[slot] = cc
	return cc, nil
}

// clientConn is one pooled connection: a write path serialized by wmu, a
// pending map matching request IDs to waiting calls, and one reader
// goroutine completing them out of order.
type clientConn struct {
	nc  net.Conn
	wmu sync.Mutex // serializes whole-message writes

	pmu     sync.Mutex
	pending map[uint64]*call // nil once broken
	nextID  uint64
	broken  bool
}

func (cc *clientConn) isBroken() bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	return cc.broken
}

// register assigns cl the next request ID. It reports false once the
// connection is broken (nothing was registered).
func (cc *clientConn) register(cl *call) (uint64, bool) {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if cc.broken {
		return 0, false
	}
	cc.nextID++
	id := cc.nextID
	cc.pending[id] = cl
	return id, true
}

// deregister removes id, reporting whether the caller reclaimed ownership
// of its call (false: a completion has been or is being delivered).
func (cc *clientConn) deregister(id uint64) bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if _, ok := cc.pending[id]; !ok {
		return false
	}
	delete(cc.pending, id)
	return true
}

// fail marks the connection broken, closes it, and completes every
// pending call with err. Idempotent; every pending call completes exactly
// once (register refuses new calls first).
func (cc *clientConn) fail(err error) {
	cc.pmu.Lock()
	if cc.broken {
		cc.pmu.Unlock()
		return
	}
	cc.broken = true
	pending := cc.pending
	cc.pending = nil
	cc.pmu.Unlock()
	_ = cc.nc.Close()
	for _, cl := range pending {
		cl.err = fmt.Errorf("irsnet: connection broken: %w", err)
		cl.done <- struct{}{}
	}
}

// readLoop completes calls as their responses arrive, in whatever order
// the server answers.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.nc, 32<<10)
	var hdr [12]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			cc.fail(err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		id := binary.LittleEndian.Uint64(hdr[4:12])
		if n < minResponseLen || n > MaxMessageBytes {
			cc.fail(fmt.Errorf("irsnet: response envelope length %d out of range", n))
			return
		}
		bodyLen := int(n) - 8
		if cap(buf) < bodyLen {
			buf = make([]byte, bodyLen)
		}
		body := buf[:bodyLen]
		if _, err := io.ReadFull(br, body); err != nil {
			cc.fail(err)
			return
		}
		cc.complete(id, body[0], body[1:])
	}
}

// complete matches one response to its call and decodes it. An unknown ID
// belongs to a cancelled (deregistered) request; the response is dropped.
func (cc *clientConn) complete(id uint64, status byte, payload []byte) {
	cc.pmu.Lock()
	cl := cc.pending[id]
	delete(cc.pending, id)
	cc.pmu.Unlock()
	if cl == nil {
		return
	}
	switch status {
	case statusOK:
		switch cl.kind {
		case callSample:
			cl.samples, cl.err = wire.DecodeSampleResponse(payload, cl.dst)
		case callStats:
			cl.err = json.Unmarshal(payload, &cl.stats)
		case callRangeStats:
			cl.n, cl.mass, cl.err = wire.DecodeRangeStatsResponse(payload)
		default:
			cl.n, cl.err = wire.DecodeInsertResponse(payload)
		}
	case statusErr:
		code, st, msg, err := wire.DecodeError(payload)
		if err != nil {
			cl.err = err
		} else {
			cl.err = &server.APIError{Code: code, Message: msg, Status: st}
		}
	default:
		cl.err = fmt.Errorf("irsnet: unknown response status 0x%02x", status)
	}
	cl.done <- struct{}{}
}

// Response-decode kinds of a call. The zero value is callCount — the u32
// count shape insert, delete, and update share — so pooled calls default
// correctly after reset.
const (
	callCount = iota
	callSample
	callStats
	callRangeStats
)

// call is one in-flight request's completion state. The done channel is
// 1-buffered and receives exactly one completion per round trip, so calls
// recycle through a pool.
type call struct {
	done    chan struct{}
	kind    uint8
	dst     []float64 // sample: caller's append target
	samples []float64 // sample result
	n       int       // count result (insert/delete/update/rangestats count)
	mass    float64   // rangestats mass
	stats   server.Stats
	err     error
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func getCall() *call { return callPool.Get().(*call) }

func putCall(cl *call) {
	cl.kind, cl.dst, cl.samples, cl.n, cl.mass, cl.err = callCount, nil, nil, 0, 0, nil
	callPool.Put(cl)
}
