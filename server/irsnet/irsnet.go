// Package irsnet is irsd's persistent multiplexed TCP transport: the same
// length-prefixed binary sample/insert frames the HTTP layer negotiates
// via application/x-irs-bin (internal/wire), carried over long-lived
// connections with pipelined request IDs and out-of-order responses.
//
// HTTP/1.1 sequences requests per connection: a coalesced flush that takes
// 200µs holds the connection for every queued caller behind it, and the
// transport adds headers, chunking, and connection-pool churn around each
// ~30-byte frame. This transport removes all of that. A client writes any
// number of requests down one connection without waiting; the server
// submits each one asynchronously into the coalescing core the moment it
// is decoded (the reader never parks behind a flush), and responses return
// whenever their flush completes, matched by ID. One connection therefore
// carries an entire concurrency-N workload, and — because concurrent
// requests on one connection arrive back to back at the reader — it feeds
// the coalescer larger batches than N parallel HTTP connections ever
// could.
//
// # Protocol
//
// All integers little-endian. One message per request and exactly one per
// response; IDs are chosen by the client and opaque to the server
// (uniqueness per connection is the client's responsibility — responses
// carry whatever ID the request did). Length fields count the bytes that
// follow them.
//
//	request  message:  u32 len | u64 id | frame
//	response message:  u32 len | u64 id | u8 status | payload
//
// The frame is exactly one binary request frame as specified in
// internal/wire (sample 0x01 or insert 0x02). A status byte of 0 means
// the payload is that request's binary response frame; 1 means it is the
// error payload
//
//	u16 http_status | u8 len(code) | code | u16 len(msg) | msg
//
// carrying the same code/status vocabulary as the HTTP JSON error
// envelope, so the typed client surfaces identical errors (errors.Is
// against the server package's sentinels works over either transport).
//
// Malformed frames inside a well-formed message are answered per request
// with code bad_request, exactly like HTTP. A malformed message envelope
// (length below the 9-byte minimum or above MaxMessageBytes) is
// unrecoverable — the stream has lost sync — so the server drops the
// connection.
//
// # Shutdown
//
// Server.Shutdown stops the listener, unblocks every connection's reader,
// waits for in-flight requests to be answered and written, then closes
// the connections — the same drain contract as http.Server.Shutdown plus
// the serving core's Close.
package irsnet

import "errors"

const (
	// reqHeaderSize is the fixed prefix of a request message
	// (u32 len + u64 id).
	reqHeaderSize = 12

	// statusOK and statusErr are the response status byte.
	statusOK  = 0x00
	statusErr = 0x01

	// minRequestLen is the smallest valid request length field: the 8-byte
	// ID plus at least one frame byte.
	minRequestLen = 8 + 1
	// minResponseLen is the smallest valid response length field: the
	// 8-byte ID plus the status byte.
	minResponseLen = 8 + 1
)

// MaxMessageBytes bounds a message's length field (the bytes after it) on
// both sides, mirroring the HTTP layer's request-body bound: a
// megabyte-scale insert batch is the intended granularity, anything larger
// should arrive as several requests.
const MaxMessageBytes = 8 << 20

// ErrClosed is returned by client calls after Close, and wrapped into the
// failure of calls in flight when their connection breaks.
var ErrClosed = errors.New("irsnet: client closed")
