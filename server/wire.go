package server

// Wire types of the irsd JSON protocol. The Dataset field of every request
// may be empty when exactly one dataset is registered; responses always
// echo the resolved name.

// SampleRequest asks for T independent samples from [Lo, Hi].
type SampleRequest struct {
	Dataset string  `json:"dataset,omitempty"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	T       int     `json:"t"`
}

// SampleResponse carries the T samples, in draw order.
type SampleResponse struct {
	Dataset string    `json:"dataset"`
	Samples []float64 `json:"samples"`
}

// InsertRequest stores keys and/or weighted items. Keys is shorthand for
// unit-weight items; on unweighted datasets all weights are ignored.
type InsertRequest struct {
	Dataset string    `json:"dataset,omitempty"`
	Keys    []float64 `json:"keys,omitempty"`
	Items   []Item    `json:"items,omitempty"`
}

// InsertResponse reports how many items were stored.
type InsertResponse struct {
	Dataset  string `json:"dataset"`
	Inserted int    `json:"inserted"`
}

// UpdateRequest sets the weight of one occurrence of each item's key on a
// weighted dataset.
type UpdateRequest struct {
	Dataset string `json:"dataset,omitempty"`
	Items   []Item `json:"items,omitempty"`
}

// UpdateResponse reports how many keys were present and re-weighted.
type UpdateResponse struct {
	Dataset string `json:"dataset"`
	Updated int    `json:"updated"`
}

// RangeStatsRequest asks for the in-range key count and sampling mass of
// [Lo, Hi] — the probe a cluster router splits its multinomial with.
type RangeStatsRequest struct {
	Dataset string  `json:"dataset,omitempty"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

// RangeStatsResponse reports the in-range key count and sampling mass.
type RangeStatsResponse struct {
	Dataset string  `json:"dataset"`
	Count   int     `json:"count"`
	Mass    float64 `json:"mass"`
}

// SnapshotRequest triggers a point-in-time snapshot (and WAL compaction)
// of a durable dataset.
type SnapshotRequest struct {
	Dataset string `json:"dataset,omitempty"`
}

// SnapshotResponse reports the committed snapshot: the WAL sequence it
// covers and the number of items serialized.
type SnapshotResponse struct {
	Dataset string `json:"dataset"`
	Seq     uint64 `json:"seq"`
	Items   int    `json:"items"`
}

// DeleteRequest removes one occurrence of each key.
type DeleteRequest struct {
	Dataset string    `json:"dataset,omitempty"`
	Keys    []float64 `json:"keys,omitempty"`
}

// DeleteResponse reports how many keys were present and removed.
type DeleteResponse struct {
	Dataset string `json:"dataset"`
	Removed int    `json:"removed"`
}

// AddDatasetRequest creates a dataset at runtime (POST /datasets) through
// the server's Provisioner.
type AddDatasetRequest struct {
	Dataset  string `json:"dataset"`
	Weighted bool   `json:"weighted,omitempty"`
}

// AddDatasetResponse confirms the registration.
type AddDatasetResponse struct {
	Dataset string `json:"dataset"`
	Kind    string `json:"kind"`
}

// DropDatasetResponse confirms a DELETE /datasets/{name}: the dataset has
// been drained, its store synced and closed, and the name unregistered.
type DropDatasetResponse struct {
	Dataset string `json:"dataset"`
	Dropped bool   `json:"dropped"`
}

// DatasetInfo is one GET /datasets element: the registry's view of a
// dataset without the serving counters /stats carries.
type DatasetInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	State   string `json:"state,omitempty"`
	Durable bool   `json:"durable,omitempty"`
}

// ListDatasetsResponse is the GET /datasets payload.
type ListDatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// ErrorResponse is the error envelope every non-2xx response carries.
type ErrorResponse struct {
	Error WireError `json:"error"`
}

// WireError is a machine-readable code plus a human-readable message.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}
