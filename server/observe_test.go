package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/irsgo/irs/server"
)

// get issues one GET against the server and returns status and body.
func get(t *testing.T, s *server.Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestReadyzProbeOrdering pins the readiness lifecycle an orchestrator
// depends on: /readyz is 503 while boot recovery is still running (a
// gated fake File holds the WAL open hostage), 200 once recovery
// completes and SetReady runs, and 503 again the moment drain starts —
// while a request already in flight still completes. /healthz stays 200
// throughout: a starting or draining daemon is alive.
func TestReadyzProbeOrdering(t *testing.T) {
	dir := t.TempDir()
	// A generous coalesce window keeps the drain-phase sample request in
	// flight long enough to probe around it.
	s := server.New(server.Config{CoalesceWindow: 50 * time.Millisecond})

	if code, body := get(t, s, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz before boot: %d %q", code, body)
	}
	if code, body := get(t, s, "/readyz"); code != 503 || body != "starting\n" {
		t.Fatalf("/readyz before boot: %d %q, want 503 starting", code, body)
	}

	// Boot recovery on its own goroutine, gated: OpenFile blocks until the
	// gate opens, exactly like a slow disk holding up WAL recovery. The
	// irsd sequence is addDatasets then SetReady; mirror it.
	gate := make(chan struct{})
	booted := make(chan error, 1)
	go func() {
		_, _, err := s.AddDurableUnweighted("du", server.DurableOptions{
			Dir:  filepath.Join(dir, "du"),
			Sync: server.SyncAlways,
			OpenFile: func(path string) (server.File, error) {
				<-gate // closed once the test has probed the starting state
				return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
			},
		})
		if err == nil {
			s.SetReady()
		}
		booted <- err
	}()

	// Recovery cannot have finished: its segment open is parked on the
	// gate. Readiness must still say starting.
	if code, body := get(t, s, "/readyz"); code != 503 || body != "starting\n" {
		t.Fatalf("/readyz during recovery: %d %q, want 503 starting", code, body)
	}
	if s.Ready() {
		t.Fatal("Ready() true while recovery is gated")
	}

	close(gate)
	if err := <-booted; err != nil {
		t.Fatalf("gated recovery failed: %v", err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	if code, body := get(t, s, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz after recovery: %d %q, want 200 ready", code, body)
	}

	ts := httptest.NewServer(s)
	defer ts.Close()
	cl := server.NewClient(ts.URL)
	ctx := context.Background()
	if _, err := cl.InsertKeys(ctx, "du", []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatalf("insert: %v", err)
	}

	// Launch a sample that will linger in the coalescer window, start the
	// drain mid-flight, and verify ordering: readiness drops first, the
	// in-flight request still answers.
	type sampled struct {
		keys []float64
		err  error
	}
	inflight := make(chan sampled, 1)
	go func() {
		keys, err := cl.Sample(ctx, "du", 0, 10, 3)
		inflight <- sampled{keys, err}
	}()
	time.Sleep(10 * time.Millisecond) // well inside the 50ms window
	s.SetDraining()
	if code, body := get(t, s, "/readyz"); code != 503 || body != "draining\n" {
		t.Fatalf("/readyz during drain: %d %q, want 503 draining", code, body)
	}
	if code, _ := get(t, s, "/healthz"); code != 200 {
		t.Fatalf("/healthz during drain: %d, want 200 (draining is alive)", code)
	}
	res := <-inflight
	if res.err != nil || len(res.keys) != 3 {
		t.Fatalf("in-flight sample during drain: keys=%v err=%v", res.keys, res.err)
	}

	// Draining is terminal: a late SetReady (SIGTERM landed during boot,
	// recovery finished afterwards) must not resurrect readiness.
	s.SetReady()
	if code, _ := get(t, s, "/readyz"); code != 503 {
		t.Fatalf("/readyz after SetReady post-drain: %d, want 503 (draining wins)", code)
	}
}

// TestPprofGating pins the opt-in: /debug/pprof/ is 404 until
// EnablePprof, then serves the index.
func TestPprofGating(t *testing.T) {
	s := server.New(server.Config{})
	if code, _ := get(t, s, "/debug/pprof/"); code != 404 {
		t.Fatalf("/debug/pprof/ without -pprof: %d, want 404", code)
	}
	s.EnablePprof()
	code, body := get(t, s, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ with -pprof: %d (index should list profiles)", code)
	}
}

// parseExposition structurally validates Prometheus text format and
// returns the samples as name{sortedlabels} -> value. It enforces what a
// scraper enforces: every sample's name (or its _bucket/_sum/_count
// expansion) is declared by a # TYPE, and all samples of one family are
// contiguous.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string) // family -> type
	seenFamily := make(map[string]bool)
	current := ""
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if typed[parts[2]] != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
			labels := strings.TrimSuffix(key[i+1:], "}")
			parts := strings.Split(labels, ",")
			sort.Strings(parts)
			key = name + "{" + strings.Join(parts, ",") + "}"
		}
		fam := family(name)
		if typed[fam] == "" {
			t.Fatalf("line %d: sample %s has no preceding # TYPE", ln+1, name)
		}
		if fam != current {
			if seenFamily[fam] {
				t.Fatalf("line %d: family %s split into non-contiguous blocks", ln+1, fam)
			}
			seenFamily[fam] = true
			current = fam
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %s", ln+1, key)
		}
		samples[key] = f
	}
	return samples
}

// TestMetricsExposition drives real traffic through a durable server and
// asserts /metrics serves structurally valid Prometheus text whose key
// series carry sane values: request-latency and fsync-latency histograms
// populated, coalescing ratio and queue depth present, readiness and
// build identity reported.
func TestMetricsExposition(t *testing.T) {
	s, cl, closeAll := newDurableDaemon(t, t.TempDir())
	defer closeAll()
	s.SetReady()
	s.SetVersion("test-build")
	ctx := context.Background()

	keys := make([]float64, 100)
	for i := range keys {
		keys[i] = float64(i)
	}
	if _, err := cl.InsertKeys(ctx, "du", keys); err != nil {
		t.Fatalf("insert: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Sample(ctx, "du", 0, 100, 8); err != nil {
			t.Fatalf("sample: %v", err)
		}
	}
	if _, err := cl.Delete(ctx, "du", keys[:5]); err != nil {
		t.Fatalf("delete: %v", err)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q lacks exposition version", ct)
	}
	samples := parseExposition(t, rec.Body.String())

	want := func(key string, ok func(v float64) bool, desc string) {
		t.Helper()
		v, present := samples[key]
		if !present {
			t.Fatalf("series %s missing from /metrics", key)
		}
		if !ok(v) {
			t.Fatalf("series %s = %v, want %s", key, v, desc)
		}
	}
	pos := func(v float64) bool { return v > 0 }
	zero := func(v float64) bool { return v == 0 }

	want(`irsd_build_info{go="`+runtime.Version()+`",version="test-build"}`, func(v float64) bool { return v == 1 }, "1")
	want("irsd_server_ready", func(v float64) bool { return v == 1 }, "1 (SetReady ran)")
	want(`irsd_dataset_sample_requests_total{dataset="du"}`, func(v float64) bool { return v == 10 }, "10")
	want(`irsd_dataset_items_inserted_total{dataset="du"}`, func(v float64) bool { return v == 100 }, "100")
	want(`irsd_dataset_keys_deleted_total{dataset="du"}`, func(v float64) bool { return v == 5 }, "5")
	want(`irsd_http_request_duration_seconds_count{encoding="json"}`, pos, "> 0 (12 timed requests)")
	want(`irsd_http_request_duration_seconds_bucket{encoding="json",le="+Inf"}`,
		func(v float64) bool { return v == samples[`irsd_http_request_duration_seconds_count{encoding="json"}`] },
		"+Inf bucket == count")
	want(`irsd_wal_fsync_duration_seconds_count{dataset="du"}`, pos, "> 0 under SyncAlways")
	want(`irsd_wal_sync_error{dataset="du"}`, zero, "0 (healthy WAL)")
	want(`irsd_coalescer_ratio{dataset="du",path="sample"}`, func(v float64) bool { return v >= 1 }, ">= 1")
	want(`irsd_coalescer_queue_depth{dataset="du",path="sample"}`, zero, "0 at rest")
	want(`irsd_recovery_duration_seconds{dataset="du"}`, func(v float64) bool { return v >= 0 }, ">= 0")

	// Histogram self-consistency across every histogram family exposed.
	for key, v := range samples {
		if !strings.HasSuffix(metricName(key), "_count") {
			continue
		}
		inf := strings.Replace(key, "_count", "_bucket", 1)
		if i := strings.IndexByte(inf, '{'); i >= 0 {
			inf = inf[:len(inf)-1] + `,le="+Inf"}`
		} else {
			inf += `{le="+Inf"}`
		}
		if bv, ok := samples[sortLabels(inf)]; ok && bv != v {
			t.Fatalf("%s = %v but +Inf bucket = %v", key, v, bv)
		}
	}

	// POST must be rejected: scrapes are GETs.
	preq := httptest.NewRequest("POST", "/metrics", nil)
	prec := httptest.NewRecorder()
	s.ServeHTTP(prec, preq)
	if prec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: %d, want 405", prec.Code)
	}
}

func metricName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

func sortLabels(key string) string {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key
	}
	parts := strings.Split(strings.TrimSuffix(key[i+1:], "}"), ",")
	sort.Strings(parts)
	return key[:i] + "{" + strings.Join(parts, ",") + "}"
}
