package server_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/server"
)

// newSeededDaemon builds a daemon whose sample streams are fully
// deterministic for a fixed request sequence: one flusher (so every batch
// lands on the same RNG stream) and no linger window.
func newSeededDaemon(t *testing.T, seed uint64) (*server.Client, func()) {
	t.Helper()
	s := server.New(server.Config{Flushers: 1})
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := irs.NewConcurrentFromSortedSeeded(keys, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddUnweighted("u", u); err != nil {
		t.Fatal(err)
	}
	w := irs.NewWeightedConcurrent[float64](4, seed)
	items := make([]irs.WeightedItem[float64], 100)
	for i := range items {
		items[i] = irs.WeightedItem[float64]{Key: float64(i), Weight: float64(i + 1)}
	}
	if err := w.InsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWeighted("w", w); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	return server.NewClient(ts.URL), func() { ts.Close(); s.Close() }
}

// TestBinaryJSONIdenticalSamples pins the encodings to each other: two
// daemons with the same seed, driven through the identical sequential
// request sequence — one over JSON, one over the binary frames — must
// return bit-identical sample streams. float64 survives Go's JSON
// round trip exactly, so any divergence is an encoding bug.
func TestBinaryJSONIdenticalSamples(t *testing.T) {
	ctx := context.Background()
	run := func(binary bool) [][]float64 {
		cl, stop := newSeededDaemon(t, 99)
		defer stop()
		cl.Binary = binary
		var out [][]float64
		for _, ds := range []string{"u", "w"} {
			if n, err := cl.InsertKeys(ctx, ds, []float64{1e4, 1e4 + 1}); err != nil || n != 2 {
				t.Fatalf("insert keys (binary=%v): %d, %v", binary, n, err)
			}
			if n, err := cl.InsertItems(ctx, ds, []server.Item{{Key: 2e4, Weight: 3.5}}); err != nil || n != 1 {
				t.Fatalf("insert items (binary=%v): %d, %v", binary, n, err)
			}
			for i := 0; i < 20; i++ {
				samples, err := cl.Sample(ctx, ds, 0, 3e4, 7+i)
				if err != nil {
					t.Fatalf("sample (binary=%v): %v", binary, err)
				}
				out = append(out, samples)
			}
		}
		return out
	}
	jsonOut := run(false)
	binOut := run(true)
	if len(jsonOut) != len(binOut) {
		t.Fatalf("response counts differ: %d vs %d", len(jsonOut), len(binOut))
	}
	for i := range jsonOut {
		if len(jsonOut[i]) != len(binOut[i]) {
			t.Fatalf("request %d: %d samples over JSON, %d over binary", i, len(jsonOut[i]), len(binOut[i]))
		}
		for j := range jsonOut[i] {
			if jsonOut[i][j] != binOut[i][j] {
				t.Fatalf("request %d sample %d: %v over JSON, %v over binary",
					i, j, jsonOut[i][j], binOut[i][j])
			}
		}
	}
}

// TestBinaryErrorPaths mirrors the JSON error-path suite over the binary
// encoding: every typed error keeps its JSON envelope, wire code, and
// HTTP status, so errors.Is works identically over both encodings.
func TestBinaryErrorPaths(t *testing.T) {
	_, cl, base, stop := newTestDaemon(t, server.Config{}, 1000)
	defer stop()
	cl.Binary = true
	ctx := context.Background()

	cases := []struct {
		name   string
		do     func() error
		want   error
		status int
	}{
		{"inverted range", func() error { _, err := cl.Sample(ctx, "u", 10, 0, 1); return err }, server.ErrInvalidRange, 400},
		{"t=0", func() error { _, err := cl.Sample(ctx, "u", 0, 10, 0); return err }, server.ErrInvalidCount, 400},
		{"t<0", func() error { _, err := cl.Sample(ctx, "u", 0, 10, -1); return err }, server.ErrInvalidCount, 400},
		{"unknown dataset", func() error { _, err := cl.Sample(ctx, "zzz", 0, 10, 1); return err }, server.ErrUnknownDataset, 404},
		{"ambiguous dataset", func() error { _, err := cl.Sample(ctx, "", 0, 10, 1); return err }, server.ErrAmbiguousDataset, 400},
		{"empty range", func() error { _, err := cl.Sample(ctx, "u", 5000, 6000, 1); return err }, server.ErrEmptyRange, 422},
		{"invalid weight", func() error {
			_, err := cl.InsertItems(ctx, "w", []server.Item{{Key: 1, Weight: -1}})
			return err
		}, server.ErrInvalidWeight, 400},
	}
	for _, tc := range cases {
		err := tc.do()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
			continue
		}
		var api *server.APIError
		if !errors.As(err, &api) || api.Status != tc.status {
			t.Errorf("%s: api error = %+v, want status %d", tc.name, api, tc.status)
		}
	}

	// Malformed frames answer 400 bad_request, exactly like malformed JSON.
	for _, frame := range [][]byte{
		{},                   // empty body
		{0x07},               // unknown kind
		{0x01, 0x05, 'u'},    // truncated name
		{0x01, 0x01, 'u', 1}, // truncated payload
		append([]byte{0x02, 0x01, 'u'}, bytes.Repeat([]byte{0xff}, 8)...), // hostile count
		append([]byte{0x01, 0x01, 'u'}, make([]byte, 21)...),              // trailing bytes
	} {
		resp, err := http.Post(base+"/sample", server.ContentTypeBinary, bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		var body [256]byte
		n, _ := resp.Body.Read(body[:])
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body[:n]), `"bad_request"`) {
			t.Errorf("frame %x: status=%d body=%s", frame, resp.StatusCode, body[:n])
		}
	}

	// Wrong method on the binary content type.
	req, _ := http.NewRequest(http.MethodGet, base+"/sample", nil)
	req.Header.Set("Content-Type", server.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET binary /sample: %d", resp.StatusCode)
	}
}

// TestBinaryRoundTrip drives the full insert/sample/delete cycle over the
// binary client against both dataset kinds (delete falls back to JSON;
// the two encodings interleave freely on one connection).
func TestBinaryRoundTrip(t *testing.T) {
	_, cl, _, stop := newTestDaemon(t, server.Config{}, 1000)
	defer stop()
	cl.Binary = true
	ctx := context.Background()

	if n, err := cl.InsertKeys(ctx, "u", []float64{5000, 5001, 5002}); err != nil || n != 3 {
		t.Fatalf("InsertKeys: %d, %v", n, err)
	}
	out, err := cl.Sample(ctx, "u", 5000, 5002, 12)
	if err != nil || len(out) != 12 {
		t.Fatalf("Sample: %v, %v", out, err)
	}
	for _, k := range out {
		if k < 5000 || k > 5002 {
			t.Fatalf("sample %g out of range", k)
		}
	}
	// SampleAppend reuses the caller's buffer across requests.
	buf := out[:0]
	for i := 0; i < 5; i++ {
		buf, err = cl.SampleAppend(ctx, "u", buf[:0], 5000, 5002, 3)
		if err != nil || len(buf) != 3 {
			t.Fatalf("SampleAppend: %v, %v", buf, err)
		}
	}
	if n, err := cl.Delete(ctx, "u", []float64{5000, 5001, 5002}); err != nil || n != 3 {
		t.Fatalf("Delete: %d, %v", n, err)
	}
	if _, err := cl.Sample(ctx, "u", 5000, 5002, 1); !errors.Is(err, server.ErrEmptyRange) {
		t.Fatalf("after delete: err = %v", err)
	}
	// Weighted inserts over binary carry their weights.
	if n, err := cl.InsertItems(ctx, "w", []server.Item{{Key: 7000, Weight: 1e9}}); err != nil || n != 1 {
		t.Fatalf("InsertItems: %d, %v", n, err)
	}
	wout, err := cl.Sample(ctx, "w", 0, 8000, 50)
	if err != nil {
		t.Fatal(err)
	}
	dominated := 0
	for _, k := range wout {
		if k == 7000 {
			dominated++
		}
	}
	if dominated < 45 {
		t.Fatalf("dominating weight sampled only %d/50 times", dominated)
	}
}
