package server

// The compact binary wire format for the two hot endpoints, /sample and
// /insert. JSON costs the serving stack more than the samplers cost it —
// float formatting/parsing plus per-request decoder allocation — so both
// sides can negotiate length-prefixed little-endian frames instead via
//
//	Content-Type: application/x-irs-bin
//
// on the request; the handler answers in kind. Every other endpoint, and
// every error response on any endpoint, stays JSON (errors are off the hot
// path and keep their machine-readable {"error":{code,message}} envelope,
// so errors.Is works identically over both encodings).
//
// Frame layout (all integers little-endian, all floats IEEE-754 bits
// little-endian; the HTTP body is exactly one frame, trailing bytes are an
// error):
//
//	sample request   u8 kind=0x01 | u8 len(name) | name | f64 lo | f64 hi | u32 t
//	sample response  u32 n | n x f64 samples
//	insert request   u8 kind=0x02 | u8 len(name) | name | u32 nk | nk x f64 keys
//	                 | u32 ni | ni x (f64 key, f64 weight) items
//	insert response  u32 inserted
//
// Encode and decode run over pooled byte buffers on both the handler and
// the typed client, so the binary path adds no per-request buffer
// allocations on top of the zero-alloc serving core.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// ContentTypeBinary is the negotiated media type of the binary frames.
const ContentTypeBinary = "application/x-irs-bin"

// Frame kind bytes (first byte of every request frame).
const (
	frameSample = 0x01
	frameInsert = 0x02
)

// errFrame wraps every decode failure so transports can answer
// bad_request uniformly.
var errFrame = errors.New("irs-bin: malformed frame")

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errFrame, fmt.Sprintf(format, args...))
}

// maxRetainedElems bounds the element capacity a pooled buffer keeps:
// one outsized request must not leave multi-megabyte buffers circulating
// in the pools forever (the serving core's flusher scratch applies the
// same bound). Oversized buffers are reset to the pool's seed capacity.
const maxRetainedElems = 1 << 16

// bufPool recycles the encode/decode byte buffers of the binary path
// (request bodies on the handler, frames on the client).
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxRetainedElems*8 {
		*b = make([]byte, 0, 4096)
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// f64Pool recycles the float64 result buffers the handler samples into.
var f64Pool = sync.Pool{New: func() any { s := make([]float64, 0, 512); return &s }}

func getF64() *[]float64 { return f64Pool.Get().(*[]float64) }

func putF64(s *[]float64) {
	if cap(*s) > maxRetainedElems {
		*s = make([]float64, 0, 512)
	}
	*s = (*s)[:0]
	f64Pool.Put(s)
}

// itemPool recycles the decoded insert-item buffers.
var itemPool = sync.Pool{New: func() any { s := make([]Item, 0, 256); return &s }}

func getItems() *[]Item { return itemPool.Get().(*[]Item) }

func putItems(s *[]Item) {
	if cap(*s) > maxRetainedElems {
		*s = make([]Item, 0, 256)
	}
	*s = (*s)[:0]
	itemPool.Put(s)
}

// readAllInto reads r to EOF into b's spare capacity, growing as needed,
// and returns the filled slice — the shared grow-and-read loop of the
// handler's body reader and the client's response reader.
func readAllInto(r io.Reader, b []byte) ([]byte, error) {
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

// appendU32 / appendF64 are the frame-building primitives.
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// frameReader consumes one frame front to back with bounds checking; every
// read reports a typed framing error instead of panicking, which is the
// property the fuzz target pins.
type frameReader struct {
	b []byte
}

func (r *frameReader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, frameErr("truncated u8")
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *frameReader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, frameErr("truncated u32")
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *frameReader) f64() (float64, error) {
	if len(r.b) < 8 {
		return 0, frameErr("truncated f64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

func (r *frameReader) name() (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	if len(r.b) < int(n) {
		return "", frameErr("truncated name (%d bytes declared, %d left)", n, len(r.b))
	}
	name := string(r.b[:n])
	r.b = r.b[n:]
	return name, nil
}

// count reads a u32 element count and checks it against the bytes
// actually remaining at elemSize bytes per element, so a hostile count
// can never drive an oversized allocation.
func (r *frameReader) count(elemSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(elemSize) > int64(len(r.b)) {
		return 0, frameErr("count %d exceeds remaining %d bytes", n, len(r.b))
	}
	return int(n), nil
}

func (r *frameReader) done() error {
	if len(r.b) != 0 {
		return frameErr("%d trailing bytes", len(r.b))
	}
	return nil
}

// binSampleReq is a decoded sample request frame.
type binSampleReq struct {
	Dataset string
	Lo, Hi  float64
	T       int
}

// encodeSampleRequest appends the sample request frame to b.
func encodeSampleRequest(b []byte, req binSampleReq) ([]byte, error) {
	if len(req.Dataset) > 255 {
		return b, frameErr("dataset name longer than 255 bytes")
	}
	if req.T > math.MaxInt32 {
		// Truncating would silently request a different count; the JSON
		// encoding transmits the full int, so reject rather than diverge.
		return b, frameErr("sample count %d exceeds the wire format's int32 range", req.T)
	}
	b = append(b, frameSample, byte(len(req.Dataset)))
	b = append(b, req.Dataset...)
	b = appendF64(b, req.Lo)
	b = appendF64(b, req.Hi)
	// Negative T is transmitted as-is (int32 two's complement) so the
	// server's count validation answers it exactly like the JSON path.
	b = appendU32(b, uint32(int32(req.T)))
	return b, nil
}

// decodeSampleRequest parses one sample request frame.
func decodeSampleRequest(b []byte) (binSampleReq, error) {
	r := frameReader{b: b}
	var req binSampleReq
	kind, err := r.u8()
	if err != nil {
		return req, err
	}
	if kind != frameSample {
		return req, frameErr("kind 0x%02x on /sample, want 0x%02x", kind, frameSample)
	}
	if req.Dataset, err = r.name(); err != nil {
		return req, err
	}
	if req.Lo, err = r.f64(); err != nil {
		return req, err
	}
	if req.Hi, err = r.f64(); err != nil {
		return req, err
	}
	t, err := r.u32()
	if err != nil {
		return req, err
	}
	req.T = int(int32(t)) // round-trips the client's int32 truncation, sign included
	return req, r.done()
}

// encodeSampleResponse appends the sample response frame to b.
func encodeSampleResponse(b []byte, samples []float64) []byte {
	b = appendU32(b, uint32(len(samples)))
	for _, s := range samples {
		b = appendF64(b, s)
	}
	return b
}

// decodeSampleResponse parses a sample response frame, appending the
// samples to dst. On any decode error dst is returned at its original
// length — a malformed frame must not leave samples behind in a buffer
// the caller reuses.
func decodeSampleResponse(b []byte, dst []float64) ([]float64, error) {
	base := len(dst)
	r := frameReader{b: b}
	n, err := r.count(8)
	if err != nil {
		return dst, err
	}
	for i := 0; i < n; i++ {
		v, err := r.f64()
		if err != nil {
			return dst[:base], err
		}
		dst = append(dst, v)
	}
	if err := r.done(); err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// binInsertReq is a decoded insert request frame. Keys is the unit-weight
// shorthand, Items the weighted form — the same split as InsertRequest.
type binInsertReq struct {
	Dataset string
	Keys    []float64
	Items   []Item
}

// encodeInsertRequest appends the insert request frame to b.
func encodeInsertRequest(b []byte, req binInsertReq) ([]byte, error) {
	if len(req.Dataset) > 255 {
		return b, frameErr("dataset name longer than 255 bytes")
	}
	b = append(b, frameInsert, byte(len(req.Dataset)))
	b = append(b, req.Dataset...)
	b = appendU32(b, uint32(len(req.Keys)))
	for _, k := range req.Keys {
		b = appendF64(b, k)
	}
	b = appendU32(b, uint32(len(req.Items)))
	for _, it := range req.Items {
		b = appendF64(b, it.Key)
		b = appendF64(b, it.Weight)
	}
	return b, nil
}

// decodeInsertRequest parses one insert request frame, appending decoded
// keys/items into the caller's (pooled) dst slices.
func decodeInsertRequest(b []byte, keys []float64, items []Item) (binInsertReq, error) {
	r := frameReader{b: b}
	var req binInsertReq
	kind, err := r.u8()
	if err != nil {
		return req, err
	}
	if kind != frameInsert {
		return req, frameErr("kind 0x%02x on /insert, want 0x%02x", kind, frameInsert)
	}
	if req.Dataset, err = r.name(); err != nil {
		return req, err
	}
	nk, err := r.count(8)
	if err != nil {
		return req, err
	}
	for i := 0; i < nk; i++ {
		v, err := r.f64()
		if err != nil {
			return req, err
		}
		keys = append(keys, v)
	}
	ni, err := r.count(16)
	if err != nil {
		return req, err
	}
	for i := 0; i < ni; i++ {
		k, err := r.f64()
		if err != nil {
			return req, err
		}
		w, err := r.f64()
		if err != nil {
			return req, err
		}
		items = append(items, Item{Key: k, Weight: w})
	}
	req.Keys, req.Items = keys, items
	return req, r.done()
}

// encodeInsertResponse appends the insert response frame to b.
func encodeInsertResponse(b []byte, inserted int) []byte {
	return appendU32(b, uint32(inserted))
}

// decodeInsertResponse parses an insert response frame.
func decodeInsertResponse(b []byte) (int, error) {
	r := frameReader{b: b}
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	return int(n), r.done()
}
