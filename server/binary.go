package server

// The compact binary wire format for the two hot endpoints, /sample and
// /insert, lives in internal/wire and is shared with the persistent TCP
// transport (package server/irsnet): both carry the same length-prefixed
// little-endian frames, so a client can switch transports without the
// server's sample streams diverging. On HTTP the encoding is negotiated
// per request via
//
//	Content-Type: application/x-irs-bin
//
// on the request; the handler answers in kind. Every other endpoint, and
// every error response on any endpoint, stays JSON (errors are off the hot
// path and keep their machine-readable {"error":{code,message}} envelope,
// so errors.Is works identically over both encodings).
//
// Encode and decode run over pooled byte buffers on both the handler and
// the typed client, so the binary path adds no per-request buffer
// allocations on top of the zero-alloc serving core.

import "github.com/irsgo/irs/internal/wire"

// ContentTypeBinary is the negotiated media type of the binary frames.
const ContentTypeBinary = wire.ContentTypeBinary
