package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"github.com/irsgo/irs/server"
)

// newDurableServer recovers a Server over a data directory: one durable
// unweighted dataset "du" and one durable weighted dataset "dw" — the
// public API's equivalent of irsd -data-dir.
func newDurableServer(t *testing.T, dir string) *server.Server {
	t.Helper()
	s := server.New(server.Config{})
	if _, _, err := s.AddDurableUnweighted("du", server.DurableOptions{
		Dir: filepath.Join(dir, "du"), Sync: server.SyncAlways, Shards: 2, Seed: 5,
	}); err != nil {
		t.Fatalf("AddDurableUnweighted: %v", err)
	}
	if _, _, err := s.AddDurableWeighted("dw", server.DurableOptions{
		Dir: filepath.Join(dir, "dw"), Sync: server.SyncAlways, Shards: 2, Seed: 5,
	}); err != nil {
		t.Fatalf("AddDurableWeighted: %v", err)
	}
	return s
}

// newDurableDaemon is newDurableServer behind a live listener.
func newDurableDaemon(t *testing.T, dir string) (*server.Server, *server.Client, func()) {
	t.Helper()
	s := newDurableServer(t, dir)
	ts := httptest.NewServer(s)
	return s, server.NewClient(ts.URL), func() {
		ts.Close()
		_ = s.Close()
	}
}

func dsStats(t *testing.T, cl *server.Client, name string) server.DatasetStats {
	t.Helper()
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range st.Datasets {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("dataset %q missing from stats", name)
	return server.DatasetStats{}
}

// TestHTTPDurableRestart drives the whole durable protocol through HTTP:
// mutate, stop the daemon abruptly (no graceful Close — SyncAlways makes
// every acknowledged request durable), boot a second daemon on the same
// directory, and verify state, stats, and serving all survived.
func TestHTTPDurableRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1 := newDurableServer(t, dir)
	ts1 := httptest.NewServer(s1)
	cl := server.NewClient(ts1.URL)

	keys := make([]float64, 500)
	for i := range keys {
		keys[i] = float64(i)
	}
	if n, err := cl.InsertKeys(ctx, "du", keys); err != nil || n != 500 {
		t.Fatalf("insert du: n=%d err=%v", n, err)
	}
	if n, err := cl.Delete(ctx, "du", keys[:50]); err != nil || n != 50 {
		t.Fatalf("delete du: n=%d err=%v", n, err)
	}
	witems := make([]server.Item, 200)
	for i := range witems {
		witems[i] = server.Item{Key: float64(i), Weight: float64(i + 1)}
	}
	if n, err := cl.InsertItems(ctx, "dw", witems); err != nil || n != 200 {
		t.Fatalf("insert dw: n=%d err=%v", n, err)
	}
	if n, err := cl.Update(ctx, "dw", []server.Item{{Key: 7, Weight: 1000}}); err != nil || n != 1 {
		t.Fatalf("update dw: n=%d err=%v", n, err)
	}
	// Snapshot the weighted dataset so its recovery exercises
	// snapshot-plus-tail; the unweighted one recovers from WAL alone.
	snap, err := cl.Snapshot(ctx, "dw")
	if err != nil || snap.Items != 200 {
		t.Fatalf("snapshot dw: %+v err=%v", snap, err)
	}
	if n, err := cl.Update(ctx, "dw", []server.Item{{Key: 8, Weight: 2000}}); err != nil || n != 1 {
		t.Fatalf("post-snapshot update dw: n=%d err=%v", n, err)
	}
	// Abrupt stop: close the listener, abandon the server un-drained.
	ts1.Close()

	s2, cl2, stop2 := newDurableDaemon(t, dir)
	defer stop2()
	_ = s2

	du := dsStats(t, cl2, "du")
	if du.Len != 450 {
		t.Fatalf("recovered du len %d, want 450", du.Len)
	}
	if !du.Durable || du.Persist == nil || du.Persist.Recovery.RecordsReplayed == 0 {
		t.Fatalf("du durability stats: %+v", du.Persist)
	}
	dw := dsStats(t, cl2, "dw")
	if dw.Len != 200 {
		t.Fatalf("recovered dw len %d, want 200", dw.Len)
	}
	if dw.Persist == nil || dw.Persist.Recovery.SnapshotEntries != 200 {
		t.Fatalf("dw did not recover through its snapshot: %+v", dw.Persist)
	}
	// The re-weighted keys must dominate samples over their neighborhood:
	// keys 7 and 8 carry weight 1000 and 2000 of the ~1020 the rest of
	// [0,20] holds. Statistical details are covered by the chi-square
	// suites; here a sanity majority check proves weights survived.
	got, err := cl2.Sample(ctx, "dw", 0, 20, 400)
	if err != nil {
		t.Fatal(err)
	}
	heavy := 0
	for _, k := range got {
		if k == 7 || k == 8 {
			heavy++
		}
	}
	if heavy < 200 {
		t.Fatalf("recovered weights lost: heavy keys drew %d/400", heavy)
	}
	// The recovered daemon keeps serving mutations.
	if n, err := cl2.InsertKeys(ctx, "du", []float64{9999}); err != nil || n != 1 {
		t.Fatalf("post-recovery insert: n=%d err=%v", n, err)
	}
}

// TestHTTPUpdateAndSnapshotErrors covers the new endpoints' error paths
// end to end, including the client's sentinel mapping.
func TestHTTPUpdateAndSnapshotErrors(t *testing.T) {
	_, cl, _, stop := newTestDaemon(t, server.Config{}, 100)
	defer stop()
	ctx := context.Background()

	if _, err := cl.Update(ctx, "u", []server.Item{{Key: 1, Weight: 2}}); !errors.Is(err, server.ErrNotWeighted) {
		t.Fatalf("update on unweighted: %v", err)
	}
	if _, err := cl.Update(ctx, "w", []server.Item{{Key: 1, Weight: -3}}); !errors.Is(err, server.ErrInvalidWeight) {
		t.Fatalf("update with bad weight: %v", err)
	}
	if _, err := cl.Update(ctx, "none", nil); !errors.Is(err, server.ErrUnknownDataset) {
		t.Fatalf("update on unknown: %v", err)
	}
	// The test daemon's datasets are memory-only.
	if _, err := cl.Snapshot(ctx, "w"); !errors.Is(err, server.ErrNotDurable) {
		t.Fatalf("snapshot on memory-only: %v", err)
	}
	var apiErr *server.APIError
	if _, err := cl.Snapshot(ctx, "u"); !errors.As(err, &apiErr) || apiErr.Code != "not_durable" {
		t.Fatalf("snapshot wire code: %v", err)
	}
	// Updates that hit absent keys report 0 without error.
	if n, err := cl.Update(ctx, "w", []server.Item{{Key: 1e9, Weight: 5}}); err != nil || n != 0 {
		t.Fatalf("update absent key: n=%d err=%v", n, err)
	}
}

// TestHTTPDurableFreshDirServes: a durable dataset over an empty directory
// starts empty and works immediately.
func TestHTTPDurableFreshDirServes(t *testing.T) {
	_, cl, stop := newDurableDaemon(t, t.TempDir())
	defer stop()
	ctx := context.Background()
	if d := dsStats(t, cl, "du"); d.Len != 0 || !d.Durable {
		t.Fatalf("fresh durable dataset: %+v", d)
	}
	if _, err := cl.Sample(ctx, "du", 0, 10, 1); !errors.Is(err, server.ErrEmptyRange) {
		t.Fatalf("sample on empty durable dataset: %v", err)
	}
	if n, err := cl.InsertKeys(ctx, "du", []float64{1, 2, 3}); err != nil || n != 3 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	if snap, err := cl.Snapshot(ctx, "du"); err != nil || snap.Items != 3 {
		t.Fatalf("snapshot: %+v err=%v", snap, err)
	}
}
