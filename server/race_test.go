package server_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/irsgo/irs/server"
)

// TestHTTPRace hammers the daemon end to end — coalesced samplers against
// inserters, deleters, and stats readers, over both dataset kinds, through
// real HTTP — and finishes by closing the server under fire. The value is
// under -race (CI runs it): any unsynchronized state in the handler,
// coalescer, scatter, or stats paths surfaces here.
func TestHTTPRace(t *testing.T) {
	s, cl, _, stop := newTestDaemon(t, server.Config{
		CoalesceWindow: 200 * time.Microsecond,
		MaxBatch:       16,
	}, 2000)
	defer stop()
	ctx := context.Background()

	ok := func(err error) bool {
		return err == nil || errors.Is(err, server.ErrOverloaded) ||
			errors.Is(err, server.ErrShuttingDown) || errors.Is(err, server.ErrEmptyRange)
	}
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "u"
			if g%2 == 1 {
				name = "w"
			}
			for i := 0; i < iters; i++ {
				if _, err := cl.Sample(ctx, name, 0, 1999, 6); !ok(err) {
					t.Errorf("sample %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := float64(10_000 + g*iters + i)
				if g == 0 {
					if _, err := cl.InsertKeys(ctx, "u", []float64{key}); !ok(err) {
						t.Errorf("insert: %v", err)
						return
					}
					if _, err := cl.Delete(ctx, "u", []float64{key}); !ok(err) {
						t.Errorf("delete: %v", err)
						return
					}
				} else {
					if _, err := cl.InsertItems(ctx, "w", []server.Item{{Key: key, Weight: 2}}); !ok(err) {
						t.Errorf("insert w: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := cl.Stats(ctx); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Close under fire: the drain must answer or reject cleanly.
	var closing sync.WaitGroup
	for g := 0; g < 4; g++ {
		closing.Add(1)
		go func() {
			defer closing.Done()
			for i := 0; i < 30; i++ {
				if _, err := cl.Sample(ctx, "u", 0, 1999, 2); !ok(err) {
					t.Errorf("sample during close: %v", err)
					return
				}
			}
		}()
	}
	s.Close()
	closing.Wait()
}
