package irs

import (
	"cmp"

	"github.com/irsgo/irs/internal/weighted"
)

// The weighted extension: every key carries a non-negative weight, and
// queries sample keys with probability proportional to weight among the
// range contents. This follows the line of work that extended the PODS 2014
// paper (Afshani–Wei ESA 2017; Afshani–Phillips 2019); DESIGN.md documents
// it as an extension rather than part of the reproduced paper.

// WeightedItem is a key with a non-negative weight. Zero-weight items are
// stored (and counted) but never sampled.
type WeightedItem[K cmp.Ordered] = weighted.Item[K]

// WeightedSampler is the interface shared by all weighted samplers.
type WeightedSampler[K cmp.Ordered] = weighted.Sampler[K]

// Errors returned by the weighted samplers.
var (
	// ErrZeroWeightRange: the range holds keys but their total weight is 0.
	ErrZeroWeightRange = weighted.ErrZeroWeightRange
	// ErrInvalidWeight: a construction-time weight was negative, NaN, or
	// infinite.
	ErrInvalidWeight = weighted.ErrInvalidWeight
)

// WeightedSegmentAlias samples in worst-case O(1) per draw after an
// O(log n) query setup, paying O(n log n) space (an alias table per segment
// tree node).
type WeightedSegmentAlias[K cmp.Ordered] = weighted.SegmentAlias[K]

// NewWeightedSegmentAlias builds the O(n log n)-space weighted sampler.
func NewWeightedSegmentAlias[K cmp.Ordered](items []WeightedItem[K]) (*WeightedSegmentAlias[K], error) {
	return weighted.NewSegmentAlias(items)
}

// WeightedBucket is the linear-space weighted sampler: items are grouped
// into factor-two weight classes; queries pay O(C log n) setup for C
// occupied classes (C = O(log U) for weight ratio U) and expected O(1) per
// sample.
type WeightedBucket[K cmp.Ordered] = weighted.Bucket[K]

// NewWeightedBucket builds the linear-space weighted sampler.
func NewWeightedBucket[K cmp.Ordered](items []WeightedItem[K]) (*WeightedBucket[K], error) {
	return weighted.NewBucket(items)
}

// WeightedFenwick is the linear-space weighted sampler with worst-case
// O(log n) per draw and support for dynamic weight updates.
type WeightedFenwick[K cmp.Ordered] = weighted.Fenwick[K]

// NewWeightedFenwick builds the Fenwick-backed weighted sampler.
func NewWeightedFenwick[K cmp.Ordered](items []WeightedItem[K]) (*WeightedFenwick[K], error) {
	return weighted.NewFenwick(items)
}

// WeightedNaiveCDF is the per-query baseline (binary search over the range
// CDF per sample).
type WeightedNaiveCDF[K cmp.Ordered] = weighted.NaiveCDF[K]

// NewWeightedNaiveCDF builds the baseline weighted sampler.
func NewWeightedNaiveCDF[K cmp.Ordered](items []WeightedItem[K]) (*WeightedNaiveCDF[K], error) {
	return weighted.NewNaiveCDF(items)
}

// WeightedTreap is the fully dynamic weighted sampler: O(log n) inserts,
// deletes, and weight updates; O(log n) expected per sample. Not safe for
// any concurrent use (queries restructure the tree internally).
type WeightedTreap[K cmp.Ordered] = weighted.Treap[K]

// NewWeightedTreap returns an empty dynamic weighted sampler; seed drives
// rebalancing only.
func NewWeightedTreap[K cmp.Ordered](seed uint64) *WeightedTreap[K] {
	return weighted.NewTreap[K](seed)
}

// NewWeightedTreapFromItems bulk-inserts items into a new WeightedTreap.
func NewWeightedTreapFromItems[K cmp.Ordered](seed uint64, items []WeightedItem[K]) (*WeightedTreap[K], error) {
	return weighted.NewTreapFromItems(seed, items)
}
