package irs_test

import (
	"slices"
	"sync"
	"testing"

	irs "github.com/irsgo/irs"
)

// TestConcurrentPublicAPI exercises the concurrent sampler through the
// public package, as a downstream user would: constructors, the Sampler
// interface, batch entry points, stats, and the concurrency contract.
func TestConcurrentPublicAPI(t *testing.T) {
	rng := irs.NewRNG(5)

	keys := make([]float64, 10_000)
	for i := range keys {
		keys[i] = rng.Float64() * 1000
	}
	sorted := append([]float64(nil), keys...)
	slices.Sort(sorted)

	c, err := irs.NewConcurrentFromSorted(sorted, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := irs.NewConcurrentFromSorted([]float64{2, 1}, 4); err != irs.ErrUnsorted {
		t.Fatalf("unsorted: err = %v", err)
	}
	if _, err := irs.NewConcurrentFromSplits([]int{3, 1}); err != irs.ErrUnsorted {
		t.Fatalf("unsorted splits: err = %v", err)
	}

	// The concurrent structure satisfies the same Sampler interface as the
	// single-threaded ones, so existing call sites can adopt it directly.
	var s irs.Sampler[float64] = c
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d", s.Len())
	}
	out, err := s.SampleAppend(nil, 100, 900, 50, rng)
	if err != nil || len(out) != 50 {
		t.Fatalf("SampleAppend: %d, %v", len(out), err)
	}
	for _, k := range out {
		if k < 100 || k > 900 {
			t.Fatalf("sample %g out of range", k)
		}
	}
	if _, err := s.SampleAppend(nil, 2000, 3000, 1, rng); err != irs.ErrEmptyRange {
		t.Fatalf("empty range: err = %v", err)
	}
	if _, err := s.SampleAppend(nil, 0, 1, -1, rng); err != irs.ErrInvalidCount {
		t.Fatalf("negative count: err = %v", err)
	}

	// Batch APIs.
	c.InsertBatch([]float64{1001, 1002, 1003})
	if got := c.Count(1001, 1003); got != 3 {
		t.Fatalf("after InsertBatch: Count = %d", got)
	}
	if removed := c.DeleteBatch([]float64{1001, 1002, 1003, 9999}); removed != 3 {
		t.Fatalf("DeleteBatch removed %d", removed)
	}
	results, err := c.SampleMany([]irs.ConcurrentQuery[float64]{
		{Lo: 0, Hi: 500, T: 10},
		{Lo: 500, Hi: 1000, T: 10},
	}, rng)
	if err != nil || len(results) != 2 || len(results[0]) != 10 || len(results[1]) != 10 {
		t.Fatalf("SampleMany: %v, %v", results, err)
	}

	var st irs.ConcurrentStats = c.Stats()
	if st.Shards != 4 || st.Len != len(keys) {
		t.Fatalf("stats: %+v", st)
	}

	// Concurrent goroutines, each with its own RNG split — the documented
	// usage pattern.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(grng *irs.RNG) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Insert(grng.Float64() * 1000)
				if _, err := c.Sample(0, 1000, 8, grng); err != nil {
					t.Errorf("Sample: %v", err)
					return
				}
			}
		}(rng.Split())
	}
	wg.Wait()
	if c.Len() != len(keys)+800 {
		t.Fatalf("final Len = %d", c.Len())
	}
}

// TestConcurrentGrowsFromEmpty covers the New constructor's lazy topology:
// a fresh structure has one shard and grows toward the target as data
// arrives.
func TestConcurrentGrowsFromEmpty(t *testing.T) {
	c := irs.NewConcurrent[int](6)
	if c.Shards() != 1 {
		t.Fatalf("fresh shards = %d", c.Shards())
	}
	batch := make([]int, 30_000)
	for i := range batch {
		batch[i] = i
	}
	c.InsertBatch(batch)
	if c.Shards() < 2 {
		t.Fatalf("no growth: shards = %d", c.Shards())
	}
	rng := irs.NewRNG(9)
	out, err := c.Sample(10_000, 20_000, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		if k < 10_000 || k > 20_000 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

// TestConcurrentSeededStreams covers the seeding contract of the seeded
// unweighted constructors: equal seeds hand out identical NewStream
// sequences (so a fixed request order replays sampling bit-for-bit), while
// successive streams from one structure are independent of each other, and
// the seed never biases which keys are sampled.
func TestConcurrentSeededStreams(t *testing.T) {
	keys := make([]float64, 10_000)
	for i := range keys {
		keys[i] = float64(i)
	}
	c1, err := irs.NewConcurrentFromSortedSeeded(keys, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := irs.NewConcurrentFromSortedSeeded(keys, 4, 99)
	if err != nil {
		t.Fatal(err)
	}

	queries := []irs.ConcurrentQuery[float64]{
		{Lo: 100, Hi: 9000, T: 32},
		{Lo: 2500, Hi: 7500, T: 16},
	}
	for round := 0; round < 3; round++ {
		out1, err1 := c1.SampleMany(queries, c1.NewStream())
		out2, err2 := c2.SampleMany(queries, c2.NewStream())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for q := range queries {
			if !slices.Equal(out1[q], out2[q]) {
				t.Fatalf("round %d query %d: equal seeds diverged:\n%v\n%v", round, q, out1[q], out2[q])
			}
		}
	}

	// A different seed yields different streams (overwhelmingly likely to
	// produce different draws on a 32-sample query over 10k keys).
	c3, err := irs.NewConcurrentFromSortedSeeded(keys, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c1.SampleMany(queries[:1], c1.NewStream())
	b, _ := c3.SampleMany(queries[:1], c3.NewStream())
	if slices.Equal(a[0], b[0]) {
		t.Fatal("distinct seeds produced identical draws")
	}

	// NewConcurrentSeeded wires the same contract for the empty
	// constructor, and streams are usable from concurrent goroutines.
	c4 := irs.NewConcurrentSeeded[float64](4, 99)
	c4.InsertBatch(keys)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(rng *irs.RNG) {
			defer wg.Done()
			if _, err := c4.Sample(0, 9999, 8, rng); err != nil {
				t.Errorf("Sample: %v", err)
			}
		}(c4.NewStream())
	}
	wg.Wait()
}
