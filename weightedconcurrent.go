package irs

import (
	"cmp"

	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/weighted"
)

// WeightedConcurrent is the sharded, concurrency-safe weighted IRS
// structure: the key space is split into contiguous shards, each wrapping a
// WeightedTreap behind its own reader/writer lock, and cross-shard queries
// distribute their t samples over shards with an exact multinomial split
// proportional to per-shard range *weight*, so weight-proportional sampling
// and independence are preserved under any partition (see internal/shard
// for the backend-generic engine both Concurrent and WeightedConcurrent
// instantiate).
//
// Every method is safe for any number of concurrent goroutines — inserts,
// deletes, weight updates, counts, and sampling may all run simultaneously.
// The one rule is the library-wide RNG contract: an *RNG may not be shared,
// so each sampling goroutine passes its own (derive streams with RNG.Split).
//
// Prefer the batch entry points on hot paths: InsertBatch and SampleMany
// acquire each involved shard lock once per batch instead of once per item
// or query, and SampleMany additionally answers every query in the batch
// against one consistent snapshot. Sampling a nonempty range whose total
// weight is zero returns ErrZeroWeightRange (SampleMany yields a nil slice
// for such queries, like empty ranges).
type WeightedConcurrent[K cmp.Ordered] = shard.WeightedConcurrent[K]

// NewWeightedConcurrent returns an empty WeightedConcurrent that grows
// toward shards shards as data arrives: split points are learned
// automatically once there is enough data to balance, and re-learned when a
// shard drifts far from its fair share. seed drives the per-shard treap
// rebalancing priorities and anchors the NewStream sequence (see the
// seeding contract in the package documentation) — never the sampling
// distribution.
func NewWeightedConcurrent[K cmp.Ordered](shards int, seed uint64) *WeightedConcurrent[K] {
	return shard.NewWeighted[K](shards, seed)
}

// NewWeightedConcurrentFromItems bulk-loads a WeightedConcurrent from items
// in any order, learning equi-depth split points so each shard starts with
// an equal share of the keys. Returns ErrInvalidWeight if any weight is
// negative, NaN, or infinite.
func NewWeightedConcurrentFromItems[K cmp.Ordered](items []WeightedItem[K], shards int, seed uint64) (*WeightedConcurrent[K], error) {
	return shard.NewWeightedFromItems(items, shards, seed)
}

// NewWeightedConcurrentFromSortedItems bulk-loads a WeightedConcurrent
// from items already in non-decreasing key order, validating order and
// weights in one pass without copying or re-sorting — the fast path for
// key-ordered inputs like recovered snapshots. Returns
// ErrUnsortedWeightedItems if the order does not hold and
// ErrInvalidWeight if any weight is negative, NaN, or infinite. The input
// is not retained or modified.
func NewWeightedConcurrentFromSortedItems[K cmp.Ordered](items []WeightedItem[K], shards int, seed uint64) (*WeightedConcurrent[K], error) {
	return shard.NewWeightedFromSortedItems(items, shards, seed)
}

// NewWeightedConcurrentFromSplits returns an empty WeightedConcurrent with
// fixed routing at the given sorted split points (len(splits)+1 shards):
// shard i holds keys k with splits[i-1] <= k < splits[i], and the layout is
// never changed automatically. An explicit Rebalance call switches the
// structure to learned equi-depth splits. Returns ErrUnsortedWeightedItems
// if splits are not in non-decreasing order.
func NewWeightedConcurrentFromSplits[K cmp.Ordered](splits []K, seed uint64) (*WeightedConcurrent[K], error) {
	return shard.NewWeightedFromSplits(splits, seed)
}

// ErrUnsortedWeightedItems is returned by weighted FromSorted-style
// constructors when items (or split points) are not in key order.
var ErrUnsortedWeightedItems = weighted.ErrUnsortedItems
