// irsd end to end: the serving layer as a client sees it. The demo drives
// a live irsd daemon through the typed Go client — inserts a key
// population, fires bursts of concurrent sample queries (which the daemon
// coalesces into far fewer backend SampleMany calls), deletes a slice of
// the keys, and reads the serving stats back to show the coalescing ratio.
//
// By default it self-hosts: an in-process daemon on a kernel-assigned
// port, so the example is a one-command run. Point it at an external
// daemon instead with -addr (this is how CI smoke-tests the built binary):
//
//	go run ./examples/irsd                      # self-hosted
//	irsd -addr 127.0.0.1:0 -datasets demo &     # then:
//	go run ./examples/irsd -addr http://127.0.0.1:<port>
//	go run ./examples/irsd -binary              # compact binary frames
//
// With -binary the client speaks the compact binary wire format on the
// /sample and /insert hot paths (Content-Type: application/x-irs-bin)
// instead of JSON; results are identical, the codec is just cheaper.
//
// The process exits non-zero on any protocol or correctness failure, so it
// doubles as a smoke check.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/server"
)

func main() {
	var (
		addr      = flag.String("addr", "", "base URL of a running daemon; empty self-hosts one in-process")
		n         = flag.Int("n", 2000, "keys to insert")
		clients   = flag.Int("clients", 16, "concurrent sampling clients")
		reqs      = flag.Int("requests", 50, "sample requests per client")
		verifyLen = flag.Int("verify-len", -1, "verify-only mode: assert the sole dataset holds exactly this many keys, then exit (CI crash-recovery check)")
		snapshot  = flag.Bool("snapshot", false, "trigger a /snapshot after the insert phase (durable daemons)")
		binary    = flag.Bool("binary", false, "drive /sample and /insert over the compact binary frames instead of JSON")
	)
	flag.Parse()
	log.SetFlags(0)

	base := *addr
	if *verifyLen >= 0 && base == "" {
		log.Fatal("-verify-len needs -addr: it checks the state of an external daemon")
	}
	if base == "" {
		var stop func()
		var err error
		base, stop, err = selfHost()
		if err != nil {
			log.Fatalf("irsd example: %v", err)
		}
		defer stop()
		fmt.Printf("self-hosted daemon on %s\n", base)
	}
	cl := server.NewClient(base)
	cl.Binary = *binary
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Verify-only mode: the CI crash-recovery smoke restarts a durable
	// daemon and asserts the key population survived, without mutating it.
	if *verifyLen >= 0 {
		st, err := cl.Stats(ctx)
		if err != nil || len(st.Datasets) == 0 {
			log.Fatalf("verify: stats: %+v err=%v", st, err)
		}
		d := st.Datasets[0]
		if d.Len != *verifyLen {
			log.Fatalf("verify: dataset %q holds %d keys, want %d", d.Name, d.Len, *verifyLen)
		}
		if d.Durable && d.Persist != nil {
			fmt.Printf("verified %q: len=%d (durable; recovery: snapshot seq %d with %d items, %d WAL records replayed, torn=%v)\n",
				d.Name, d.Len, d.Persist.Recovery.SnapshotSeq, d.Persist.Recovery.SnapshotEntries,
				d.Persist.Recovery.RecordsReplayed, d.Persist.Recovery.TornTail)
		} else {
			fmt.Printf("verified %q: len=%d\n", d.Name, d.Len)
		}
		fmt.Println("ok")
		return
	}

	// 1. Ingest: one batch of n keys 0..n-1 through /insert.
	keys := make([]float64, *n)
	for i := range keys {
		keys[i] = float64(i)
	}
	inserted, err := cl.InsertKeys(ctx, "", keys)
	if err != nil || inserted != *n {
		log.Fatalf("insert: inserted=%d err=%v", inserted, err)
	}
	fmt.Printf("inserted %d keys\n", inserted)

	// Optionally checkpoint the population: on a durable daemon this
	// serializes a snapshot and compacts the WAL it covers.
	if *snapshot {
		snap, err := cl.Snapshot(ctx, "")
		if err != nil || snap.Items != *n {
			log.Fatalf("snapshot: %+v err=%v", snap, err)
		}
		fmt.Printf("snapshot: %d items, wal seq %d compacted\n", snap.Items, snap.Seq)
	}

	// 2. One warm-up query, checked for shape.
	lo, hi := float64(*n/4), float64(3**n/4)
	samples, err := cl.Sample(ctx, "", lo, hi, 5)
	if err != nil || len(samples) != 5 {
		log.Fatalf("sample: got %v err=%v", samples, err)
	}
	for _, s := range samples {
		if s < lo || s > hi {
			log.Fatalf("sample %g outside [%g, %g]", s, lo, hi)
		}
	}
	fmt.Printf("warm-up sample of [%g, %g]: %v\n", lo, hi, samples)

	// 3. The point of the daemon: concurrent independent clients whose
	// requests coalesce into shared SampleMany batches server-side.
	var wg sync.WaitGroup
	var served, rejected atomic.Int64
	start := time.Now()
	for g := 0; g < *clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *reqs; i++ {
				out, err := cl.Sample(ctx, "", lo, hi, 8)
				switch {
				case errors.Is(err, server.ErrOverloaded):
					rejected.Add(1) // backpressure is a valid answer
				case err != nil:
					log.Fatalf("concurrent sample: %v", err)
				case len(out) != 8:
					log.Fatalf("concurrent sample: %d samples", len(out))
				default:
					served.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("%d clients x %d requests in %v (%d served, %d backpressured)\n",
		*clients, *reqs, time.Since(start).Round(time.Millisecond), served.Load(), rejected.Load())

	// 4. Retire a slice of the population.
	removed, err := cl.Delete(ctx, "", keys[:*n/10])
	if err != nil || removed != *n/10 {
		log.Fatalf("delete: removed=%d err=%v", removed, err)
	}
	fmt.Printf("deleted %d keys\n", removed)

	// 5. Serving stats: how many backend calls served how many requests.
	st, err := cl.Stats(ctx)
	if err != nil || len(st.Datasets) == 0 {
		log.Fatalf("stats: %+v err=%v", st, err)
	}
	for _, d := range st.Datasets {
		ratio := float64(d.SampleRequests) / float64(max(d.SampleBatches, 1))
		fmt.Printf("dataset %q (%s): len=%d shards=%d — %d sample requests in %d backend batches (%.1fx coalescing, max batch %d)\n",
			d.Name, d.Kind, d.Len, d.Shards, d.SampleRequests, d.SampleBatches, ratio, d.MaxCoalesced)
	}
	fmt.Println("ok")
}

// selfHost starts an in-process daemon with one empty unweighted dataset
// on a kernel-assigned port, returning its base URL and a stop function.
func selfHost() (string, func(), error) {
	s := server.New(server.Config{CoalesceWindow: 200 * time.Microsecond})
	if err := s.AddUnweighted("demo", irs.NewConcurrentSeeded[float64](8, 42)); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: s}
	go func() { _ = httpSrv.Serve(ln) }()
	stop := func() {
		_ = httpSrv.Close()
		s.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}
