// Log sampling under churn: a service emits events with timestamps; an
// operator keeps a sliding retention window and repeatedly asks "show me a
// fair sample of the last minute" while ingestion continues. This exercises
// the *dynamic* IRS structure — O(log n) inserts and deletes interleaved
// with O(log n + t) sampling queries — and demonstrates that repeated
// identical queries return fresh samples (no cached result sets).
package main

import (
	"fmt"
	"math"

	irs "github.com/irsgo/irs"
)

func main() {
	rng := irs.NewRNG(99)
	d := irs.NewDynamic[float64]()

	const (
		eventsPerSec = 2000
		retention    = 600.0 // keep 10 minutes
		runSeconds   = 1800  // simulate 30 minutes
	)

	// errRate(t): baseline 1% errors, with a 5-minute incident at 10x.
	isError := func(ts float64) bool {
		p := 0.01
		if ts >= 900 && ts < 1200 {
			p = 0.10
		}
		return rng.Bernoulli(p)
	}
	// Encode "error" in sub-event-resolution bits of the key so the sample
	// itself tells us the event class (keys are the only stored payload).
	// Events land on a 0.5 ms grid; the marker is 0.1 ms, far above float64
	// noise at these magnitudes and far below the grid spacing.
	encode := func(ts float64, isErr bool) float64 {
		k := ts
		if isErr {
			k += 0.1e-3
		}
		return k
	}
	decodeIsErr := func(k float64) bool {
		g := k * 2000
		frac := g - math.Round(g) // error keys sit +0.2 off the event grid
		return math.Abs(frac) > 0.1
	}

	var oldest []float64 // ring of keys for retention deletes
	fmt.Printf("%8s %10s %14s %14s %10s\n", "time", "resident", "window errors", "sampled est.", "samples")
	for sec := 0; sec < runSeconds; sec++ {
		now := float64(sec)
		for e := 0; e < eventsPerSec; e++ {
			ts := now + float64(e)/eventsPerSec
			k := encode(ts, isError(ts))
			d.Insert(k)
			oldest = append(oldest, k)
		}
		// Expire events past retention.
		for len(oldest) > 0 && oldest[0] < now-retention {
			d.Delete(oldest[0])
			oldest = oldest[1:]
		}
		// Every 5 minutes, sample the trailing 60 s and estimate the error
		// rate from 500 samples instead of reading 120k events.
		if sec%300 == 299 {
			lo, hi := now-59, now+1
			exactTotal := d.Count(lo, hi)
			samples, err := d.Sample(lo, hi, 500, rng)
			if err != nil {
				panic(err)
			}
			errs := 0
			for _, k := range samples {
				if decodeIsErr(k) {
					errs++
				}
			}
			est := float64(errs) / float64(len(samples))
			// Exact error count via two sub-range counts is impossible from
			// keys alone, so re-derive from a scan for the demo's reference
			// column.
			exactErrs := 0
			for _, k := range d.AppendRange(nil, lo, hi) {
				if decodeIsErr(k) {
					exactErrs++
				}
			}
			fmt.Printf("%7ds %10d %13.2f%% %13.2f%% %10d\n",
				sec+1, d.Len(),
				100*float64(exactErrs)/float64(exactTotal),
				100*est, len(samples))
		}
	}
	fmt.Println("\nthe 500-sample estimate tracks the true rate through the incident window,")
	fmt.Println("while the structure absorbs 2000 inserts+expiries per second")
}
