// I/O budgeting: the external-memory story of database sampling indexes.
// A table of 4M timestamps lives on (simulated) disk pages behind a B+-tree
// and a small buffer pool. An analyst wants 32 fair samples from ranges of
// growing width. Scanning pays one read per ~page of range; the sampling
// index pays a near-constant number of reads regardless of range width —
// the difference between milliseconds and minutes on real storage.
package main

import (
	"fmt"
	"log"

	"github.com/irsgo/irs/emsim"
)

func main() {
	const (
		n        = 4_000_000
		pageSize = 4096
		frames   = 128 // buffer pool: 512 KiB of cache for a ~32 MB table
		k        = 32
	)
	dev, err := emsim.NewDevice(pageSize)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := emsim.NewPool(dev, frames)
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 1000 // microsecond timestamps, 1 kHz
	}
	tree, err := emsim.BulkLoad(pool, keys, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d keys, %d leaves of %d keys, height %d\n\n",
		tree.Len(), tree.LeafCount(), tree.LeafCapacity(), tree.Height())

	rng := emsim.NewRNG(5)
	fmt.Printf("%12s %16s %16s %10s\n", "range keys", "sample I/Os", "scan I/Os", "speedup")
	for _, span := range []int{10_000, 100_000, 1_000_000, 4_000_000} {
		lo := keys[(n-span)/2]
		hi := keys[(n-span)/2+span-1]

		if err := pool.Drop(); err != nil { // cold cache for a fair count
			log.Fatal(err)
		}
		dev.ResetStats()
		if _, err := tree.SampleRange(lo, hi, k, rng); err != nil {
			log.Fatal(err)
		}
		sampleIO := dev.Stats().Reads

		if err := pool.Drop(); err != nil {
			log.Fatal(err)
		}
		dev.ResetStats()
		if _, err := tree.ScanSample(lo, hi, k, rng); err != nil {
			log.Fatal(err)
		}
		scanIO := dev.Stats().Reads

		fmt.Printf("%12d %16d %16d %9.0fx\n", span, sampleIO, scanIO,
			float64(scanIO)/float64(sampleIO))
	}

	// Warm-cache behaviour: repeated sampling queries hit the pool.
	if err := pool.Drop(); err != nil {
		log.Fatal(err)
	}
	pool.ResetStats()
	dev.ResetStats()
	lo, hi := keys[0], keys[n-1]
	for i := 0; i < 50; i++ {
		if _, err := tree.SampleRange(lo, hi, k, rng); err != nil {
			log.Fatal(err)
		}
	}
	ps := pool.Stats()
	fmt.Printf("\n50 warm full-table queries: %d device reads, pool hit rate %.0f%%\n",
		dev.Stats().Reads, 100*float64(ps.Hits)/float64(ps.Hits+ps.Misses))
}
