// WeightedConcurrent: priority-weighted log sampling while the data changes
// under heavy parallel traffic — the weighted production shape of the IRS
// problem.
//
// A WeightedConcurrent sampler shards the key space across per-shard locks
// like Concurrent, but every stored key carries a weight and queries return
// keys with probability proportional to weight; cross-shard queries split
// their samples proportionally to per-shard range *weight*, so the
// partition never distorts the distribution. This demo runs a small "log
// triage service": ingest goroutines stream timestamped log events whose
// weights encode severity (errors drown out debug lines), a priority
// goroutine escalates and decays weights live with UpdateWeight, and query
// goroutines concurrently draw severity-biased samples over arbitrary time
// windows.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	irs "github.com/irsgo/irs"
)

// Severity weights: sampling 1000x prefers an error over a debug line.
var sevWeight = []float64{1, 10, 100, 1000} // debug, info, warn, error

func main() {
	rng := irs.NewRNG(42)

	// Seed the service with an initial event population: keys are
	// timestamps (seconds), weights encode severity.
	initial := make([]irs.WeightedItem[float64], 150_000)
	for i := range initial {
		initial[i] = event(rng, 0)
	}
	c, err := irs.NewWeightedConcurrentFromItems(initial, 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	st := c.Stats()
	fmt.Printf("loaded %d events across %d shards %v\n", st.Len, st.Shards, st.PerShard)

	const (
		ingesters  = 4
		queriers   = 4
		perBatch   = 1_000
		batches    = 20
		perQuerier = 150
		horizon    = 86_400.0 // one day of timestamps
	)
	var sampled atomic.Int64
	var wg sync.WaitGroup

	// Ingest: each goroutine streams batches of fresh events. InsertBatch
	// validates weights up front and write-locks each involved shard once
	// per batch, not once per event.
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(wrng *irs.RNG) {
			defer wg.Done()
			batch := make([]irs.WeightedItem[float64], perBatch)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = event(wrng, 0)
				}
				if err := c.InsertBatch(batch); err != nil {
					log.Fatal(err)
				}
			}
		}(rng.Split())
	}

	// Priority churn: escalate random recent events to error weight and
	// decay others, concurrently with everything else.
	wg.Add(1)
	go func(urng *irs.RNG) {
		defer wg.Done()
		for i := 0; i < 2_000; i++ {
			ts := initial[urng.Intn(len(initial))].Key
			w := sevWeight[urng.Intn(len(sevWeight))]
			if _, err := c.UpdateWeight(ts, w); err != nil {
				log.Fatal(err)
			}
		}
	}(rng.Split())

	// Query: each goroutine batches windows per round with SampleMany; all
	// windows in a batch are answered against one consistent snapshot.
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(qrng *irs.RNG) {
			defer wg.Done()
			queries := []irs.ConcurrentQuery[float64]{
				{Lo: 0, Hi: horizon / 4, T: 64},       // the early window
				{Lo: horizon / 4, Hi: horizon, T: 64}, // the rest of the day
				{Lo: 0, Hi: horizon, T: 256},          // everything
			}
			for round := 0; round < perQuerier; round++ {
				results, err := c.SampleMany(queries, qrng)
				if err != nil {
					log.Fatal(err)
				}
				for i, out := range results {
					q := queries[i]
					for _, ts := range out {
						if ts < q.Lo || ts > q.Hi {
							log.Fatalf("sample %.3f escaped [%.0f, %.0f]", ts, q.Lo, q.Hi)
						}
					}
					sampled.Add(int64(len(out)))
				}
			}
		}(rng.Split())
	}

	wg.Wait()

	total := len(initial) + ingesters*batches*perBatch
	fmt.Printf("ingested %d events while drawing %d weighted samples concurrently\n",
		total-len(initial), sampled.Load())
	if c.Len() != total {
		log.Fatalf("lost data: Len = %d, want %d", c.Len(), total)
	}

	// Verify the severity bias end to end: errors carry ~1000x a debug
	// line's weight, so the sampled error share must match the exact
	// weight share, not the count share.
	items := c.AppendItems(nil)
	countShare := 0.0
	weightShare := 0.0
	totalW := 0.0
	for _, it := range items {
		totalW += it.Weight
		if it.Weight >= sevWeight[3] {
			weightShare += it.Weight
			countShare++
		}
	}
	countShare /= float64(len(items))
	weightShare /= totalW

	est, err := c.Sample(0, horizon, 20_000, rng)
	if err != nil {
		log.Fatal(err)
	}
	errors := 0
	for _, ts := range est {
		if c.TotalWeight(ts, ts) >= sevWeight[3] {
			errors++
		}
	}
	fmt.Printf("error-severity share: %.1f%% of events, %.1f%% of weight, %.1f%% of samples\n",
		100*countShare, 100*weightShare, 100*float64(errors)/float64(len(est)))

	st = c.Stats()
	fmt.Printf("final topology: %d events across %d shards %v\n", st.Len, st.Shards, st.PerShard)
}

// event draws a synthetic log event: a timestamp in [base, base+86400) and
// a severity weight (mostly debug/info, occasionally warn/error).
func event(rng *irs.RNG, base float64) irs.WeightedItem[float64] {
	sev := 0
	switch {
	case rng.Bernoulli(0.02):
		sev = 3
	case rng.Bernoulli(0.08):
		sev = 2
	case rng.Bernoulli(0.4):
		sev = 1
	}
	return irs.WeightedItem[float64]{
		Key:    base + rng.Float64Range(0, 86_400),
		Weight: sevWeight[sev],
	}
}
