// Quickstart: the 60-second tour of the irs library — build a static
// sampler, query it, sample without replacement, then switch to the dynamic
// structure and keep sampling while the data changes.
package main

import (
	"fmt"
	"log"

	irs "github.com/irsgo/irs"
)

func main() {
	rng := irs.NewRNG(7)

	// --- Static: immutable data ---------------------------------------
	temps := []float64{18.2, 21.5, 19.9, 25.1, 23.4, 17.8, 22.0, 24.3, 20.6, 26.7}
	s := irs.NewStatic(temps)

	fmt.Printf("dataset: %d temperature readings\n", s.Len())
	fmt.Printf("readings in [20°, 25°]: %d\n", s.Count(20, 25))

	samples, err := s.Sample(20, 25, 5, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 samples (with replacement):    %v\n", samples)

	distinct, err := s.SampleWithoutReplacement(20, 25, 3, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 samples (without replacement): %v\n", distinct)

	// Repeating a query gives fresh, independent randomness — the defining
	// IRS property.
	again, _ := s.Sample(20, 25, 5, rng)
	fmt.Printf("same query again (independent):  %v\n", again)

	// --- Dynamic: data under churn -------------------------------------
	d := irs.NewDynamic[float64]()
	for _, t := range temps {
		d.Insert(t)
	}
	d.Insert(28.9) // a heat spike arrives
	d.Delete(17.8) // an old reading expires

	fmt.Printf("\ndynamic set: %d readings, %d in [20°, 30°]\n", d.Len(), d.Count(20, 30))
	samples, err = d.Sample(20, 30, 5, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 samples after updates: %v\n", samples)

	// Empty ranges are reported, not silently mis-sampled.
	if _, err := d.Sample(100, 200, 1, rng); err != nil {
		fmt.Printf("sampling [100°, 200°]: %v\n", err)
	}
}
