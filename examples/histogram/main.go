// Approximate equi-depth histograms: the classical database use of range
// sampling (Chaudhuri–Motwani–Narasayya, SIGMOD 1998, cited by the IRS
// line of work). An optimizer wants bucket boundaries that split a range
// into equal-count buckets. Exact boundaries need a full sort/scan of the
// range; sampled boundaries need a few thousand samples — and the dynamic
// structure's order-statistics API provides exact quantiles to compare
// against.
package main

import (
	"fmt"
	"math"
	"sort"

	irs "github.com/irsgo/irs"
)

func main() {
	rng := irs.NewRNG(321)

	// A skewed table: 1M log-normal values.
	const n = 1_000_000
	d := irs.NewDynamic[float64]()
	for i := 0; i < n; i++ {
		d.Insert(1000 * math.Exp(rng.Norm64()))
	}

	// Exact quantiles over the whole table via the order-statistics API.
	fmt.Println("exact table quantiles (SelectRank):")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		v, _ := d.Quantile(q)
		fmt.Printf("  p%-4.0f = %9.1f\n", q*100, v)
	}

	// Approximate equi-depth histogram of a *range* via sampling.
	lo, hi := 500.0, 5000.0
	inRange := d.Count(lo, hi)
	const buckets = 8
	const sampleSize = 4000
	samples, err := d.Sample(lo, hi, sampleSize, rng)
	if err != nil {
		panic(err)
	}
	sort.Float64s(samples)

	fmt.Printf("\nequi-depth histogram of [%.0f, %.0f] (%d rows) from %d samples:\n",
		lo, hi, inRange, sampleSize)
	fmt.Printf("  %-22s %12s %12s %8s\n", "bucket", "target", "exact", "err")
	prevRank := d.RankLower(lo)
	prevEdge := lo
	for b := 1; b <= buckets; b++ {
		edge := hi
		if b < buckets {
			edge = samples[b*sampleSize/buckets-1]
		}
		// Exact count in (prevEdge, edge] via rank arithmetic — O(log n).
		edgeRank := d.RankUpper(edge)
		exact := edgeRank - prevRank
		target := inRange / buckets
		errPct := 100 * float64(exact-target) / float64(target)
		fmt.Printf("  [%8.1f, %8.1f] %12d %12d %7.1f%%\n", prevEdge, edge, target, exact, errPct)
		prevRank = edgeRank
		prevEdge = edge
	}
	fmt.Println("\nevery bucket lands within sampling error of the n/8 target:")
	fmt.Println("boundaries from 4000 samples instead of sorting 600k+ rows")
}
