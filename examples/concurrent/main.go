// Concurrent: serving range-sampling queries while the data changes under
// heavy parallel traffic — the production shape of the IRS problem.
//
// A Concurrent sampler shards the key space across per-shard locks, so
// writers touch one shard at a time while readers sample consistent
// snapshots of the shards their range overlaps. This demo runs a small
// "latency observability service": ingest goroutines stream latency
// measurements in batches while query goroutines concurrently sample the
// live distribution to estimate tail behavior over arbitrary windows.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	irs "github.com/irsgo/irs"
)

func main() {
	rng := irs.NewRNG(42)

	// Seed the service with an initial latency population (milliseconds,
	// log-normal-ish: a fast mode plus a heavy tail).
	initial := make([]float64, 200_000)
	for i := range initial {
		initial[i] = latency(rng)
	}
	c := irs.NewConcurrent[float64](8)
	c.InsertBatch(initial)

	st := c.Stats()
	fmt.Printf("loaded %d measurements across %d shards %v\n", st.Len, st.Shards, st.PerShard)

	const (
		ingesters  = 4
		queriers   = 4
		perBatch   = 1_000
		batches    = 25
		perQuerier = 200
	)
	var sampled atomic.Int64
	var wg sync.WaitGroup

	// Ingest: each goroutine streams batches of fresh measurements.
	// InsertBatch write-locks each involved shard once per batch, not once
	// per key.
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(wrng *irs.RNG) {
			defer wg.Done()
			batch := make([]float64, perBatch)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = latency(wrng)
				}
				c.InsertBatch(batch)
			}
		}(rng.Split())
	}

	// Query: each goroutine batches four windows per round with SampleMany,
	// which answers all of them against one consistent snapshot.
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(qrng *irs.RNG) {
			defer wg.Done()
			queries := []irs.ConcurrentQuery[float64]{
				{Lo: 0, Hi: 5, T: 64},    // the fast mode
				{Lo: 5, Hi: 50, T: 64},   // the shoulder
				{Lo: 50, Hi: 1e9, T: 64}, // the deep tail
				{Lo: 0, Hi: 1e9, T: 256}, // everything
			}
			for round := 0; round < perQuerier; round++ {
				results, err := c.SampleMany(queries, qrng)
				if err != nil {
					log.Fatal(err)
				}
				for i, out := range results {
					q := queries[i]
					for _, v := range out {
						if v < q.Lo || v > q.Hi {
							log.Fatalf("sample %.3f escaped [%.0f, %.0f]", v, q.Lo, q.Hi)
						}
					}
					sampled.Add(int64(len(out)))
				}
			}
		}(rng.Split())
	}

	wg.Wait()

	total := len(initial) + ingesters*batches*perBatch
	fmt.Printf("ingested %d measurements while drawing %d samples concurrently\n",
		total-len(initial), sampled.Load())
	if c.Len() != total {
		log.Fatalf("lost data: Len = %d, want %d", c.Len(), total)
	}

	// The sampler doubles as a live order-statistics service: estimate tail
	// quantiles by sampling, then verify against exact counts.
	est, err := c.Sample(0, 1e9, 10_000, rng)
	if err != nil {
		log.Fatal(err)
	}
	over50 := 0
	for _, v := range est {
		if v > 50 {
			over50++
		}
	}
	exact := float64(c.Count(50.0000001, 1e9)) / float64(c.Len())
	fmt.Printf("P(latency > 50ms): sampled %.3f%%, exact %.3f%%\n",
		100*float64(over50)/float64(len(est)), 100*exact)

	st = c.Stats()
	fmt.Printf("final topology: %d keys across %d shards %v\n", st.Len, st.Shards, st.PerShard)
}

// latency draws a synthetic latency in milliseconds: ~90% a fast mode
// around 2ms, ~10% a heavy tail stretching to seconds.
func latency(rng *irs.RNG) float64 {
	if rng.Bernoulli(0.9) {
		v := 2 + rng.Norm64()
		if v < 0.1 {
			v = 0.1
		}
		return v
	}
	return 20 / (1.001 - rng.Float64()) // Pareto-ish tail from 20ms up
}
