// Weighted sampling (extension): an ad-serving table keyed by bid price
// where each ad carries a revenue weight. "Pick an ad with price in
// [lo, hi], proportionally to revenue" is one weighted-IRS query. The
// example contrasts the three real structures and the naive baseline, and
// shows dynamic reweighting with the Fenwick sampler.
package main

import (
	"fmt"
	"log"

	irs "github.com/irsgo/irs"
)

func main() {
	rng := irs.NewRNG(2024)

	// 200k ads: price in [0.01, 50], revenue weight heavy-tailed.
	const n = 200_000
	items := make([]irs.WeightedItem[float64], n)
	for i := range items {
		price := 0.01 + rng.Float64()*49.99
		revenue := 1.0
		for rng.Bernoulli(0.45) { // geometric tail: a few ads dominate
			revenue *= 2
		}
		items[i] = irs.WeightedItem[float64]{Key: price, Weight: revenue}
	}

	seg, err := irs.NewWeightedSegmentAlias(items)
	if err != nil {
		log.Fatal(err)
	}
	bkt, err := irs.NewWeightedBucket(items)
	if err != nil {
		log.Fatal(err)
	}
	fen, err := irs.NewWeightedFenwick(items)
	if err != nil {
		log.Fatal(err)
	}

	lo, hi := 10.0, 20.0
	fmt.Printf("ads priced in [%.0f, %.0f]: %d, total revenue weight %.0f\n\n",
		lo, hi, seg.Count(lo, hi), seg.TotalWeight(lo, hi))

	// All three structures draw from the same distribution; compare the
	// mean weight of sampled ads (revenue-weighted sampling pulls the mean
	// far above the unweighted average).
	weightOf := map[float64]float64{}
	unweightedMean, cnt := 0.0, 0
	for _, it := range items {
		if it.Key >= lo && it.Key <= hi {
			weightOf[it.Key] = it.Weight
			unweightedMean += it.Weight
			cnt++
		}
	}
	unweightedMean /= float64(cnt)

	for _, s := range []struct {
		name string
		smp  irs.WeightedSampler[float64]
	}{{"segment-alias", seg}, {"bucket", bkt}, {"fenwick", fen}} {
		out, err := s.smp.SampleAppend(nil, lo, hi, 20000, rng)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, k := range out {
			mean += weightOf[k]
		}
		mean /= float64(len(out))
		fmt.Printf("%-14s mean sampled revenue weight: %8.1f (unweighted mean %.1f)\n",
			s.name, mean, unweightedMean)
	}

	// Dynamic reweighting: an advertiser exhausts its budget, weight -> 0.
	fmt.Println("\nzeroing the weight of the heaviest ad in range (budget exhausted)...")
	heavyRank, heavyW := -1, 0.0
	for i := 0; i < fen.Len(); i++ {
		if k := fen.KeyByRank(i); k >= lo && k <= hi && fen.WeightByRank(i) > heavyW {
			heavyRank, heavyW = i, fen.WeightByRank(i)
		}
	}
	heavyKey := fen.KeyByRank(heavyRank)
	if err := fen.SetWeightByRank(heavyRank, 0); err != nil {
		log.Fatal(err)
	}
	out, err := fen.SampleAppend(nil, lo, hi, 50000, rng)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, k := range out {
		if k == heavyKey {
			hits++
		}
	}
	fmt.Printf("ad with key %.4f (weight was %.0f) drawn %d/50000 times after reweighting\n",
		heavyKey, heavyW, hits)
}
