// Online aggregation: the motivating database application for independent
// range sampling (Hellerstein et al., SIGMOD 1997, cited by the IRS line of
// work). Instead of scanning millions of rows to answer
//
//	SELECT AVG(amount) FROM orders WHERE ts BETWEEN x AND y
//
// we sample the range and report a running estimate with a confidence
// interval that tightens as samples accrue. Independence across draws is
// exactly what makes the classical CLT interval valid — and it is the
// property the IRS structures guarantee.
package main

import (
	"fmt"
	"math"

	irs "github.com/irsgo/irs"
)

// order keys are timestamps; the measure (amount) is derived from the key
// via a deterministic pseudo-random hash, standing in for a side table.
func amountOf(ts float64) float64 {
	u := uint64(ts * 1e6)
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	return 5 + float64(u%100000)/1000 // 5.00 .. 105.00
}

func main() {
	const n = 2_000_000
	rng := irs.NewRNG(1234)

	// One year of order timestamps (seconds), denser on weekdays.
	keys := make([]float64, n)
	for i := range keys {
		day := float64(rng.Uint64n(365))
		if int(day)%7 >= 5 { // weekend: thin traffic
			day = float64(rng.Uint64n(365))
		}
		keys[i] = day*86400 + float64(rng.Uint64n(86400))
	}
	d := irs.NewDynamicFromUnsorted(keys)

	// Query: average order amount in March (days 59..89).
	lo, hi := 59.0*86400, 90.0*86400-1
	count := d.Count(lo, hi)
	fmt.Printf("orders in range: %d of %d\n\n", count, n)

	// Exact answer (the scan we are trying to avoid) for reference.
	exactSum := 0.0
	for _, k := range keys {
		if k >= lo && k <= hi {
			exactSum += amountOf(k)
		}
	}
	exact := exactSum / float64(count)

	fmt.Println("online aggregation (95% CI), no scan:")
	fmt.Printf("%10s %12s %22s %10s\n", "samples", "estimate", "95% interval", "err vs exact")
	var sum, sumSq float64
	taken := 0
	for _, batch := range []int{100, 400, 1500, 8000, 40000, 150000} {
		samples, err := d.Sample(lo, hi, batch, rng)
		if err != nil {
			panic(err)
		}
		for _, ts := range samples {
			a := amountOf(ts)
			sum += a
			sumSq += a * a
		}
		taken += batch
		mean := sum / float64(taken)
		variance := sumSq/float64(taken) - mean*mean
		half := 1.96 * math.Sqrt(variance/float64(taken))
		fmt.Printf("%10d %12.4f [%9.4f, %9.4f] %9.4f%%\n",
			taken, mean, mean-half, mean+half, 100*math.Abs(mean-exact)/exact)
	}
	fmt.Printf("\nexact AVG (full scan of %d rows): %.4f\n", count, exact)
	fmt.Println("the estimate converges with ~1/sqrt(k) error while touching a tiny fraction of rows")
}
