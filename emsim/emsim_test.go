package emsim_test

import (
	"testing"

	"github.com/irsgo/irs/emsim"
)

// TestPublicSurface exercises the exported façade end to end.
func TestPublicSurface(t *testing.T) {
	dev, err := emsim.NewDevice(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emsim.NewDevice(8); err != emsim.ErrPageSize {
		t.Fatalf("err = %v", err)
	}
	pool, err := emsim.NewPool(dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emsim.NewPool(dev, 1); err != emsim.ErrPoolTooTiny {
		t.Fatalf("err = %v", err)
	}
	keys := make([]int64, 50000)
	for i := range keys {
		keys[i] = int64(i) * 3
	}
	tree, err := emsim.BulkLoad(pool, keys, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 50000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	rng := emsim.NewRNG(1)
	out, err := tree.SampleRange(3000, 90000, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 25 {
		t.Fatalf("got %d samples", len(out))
	}
	for _, k := range out {
		if k < 3000 || k > 90000 || k%3 != 0 {
			t.Fatalf("bad sample %d", k)
		}
	}
	if _, err := tree.SampleRange(1, 2, 1, rng); err != emsim.ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	if _, err := tree.SampleRange(0, 10, -1, rng); err != emsim.ErrInvalidCount {
		t.Fatalf("err = %v", err)
	}
	// Empty tree via New, plus insert/delete round trip.
	dev2, _ := emsim.NewDevice(256)
	pool2, _ := emsim.NewPool(dev2, 16)
	t2, err := emsim.New(pool2)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		if err := t2.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := t2.Delete(500)
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	c, err := t2.Count(0, 999)
	if err != nil || c != 999 {
		t.Fatalf("Count = %d, %v", c, err)
	}
	// Iterator through the public alias.
	it := t2.SeekGE(990)
	n := 0
	for ; it.Valid(); it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("iterated %d keys from 990", n)
	}
	// I/O accounting is visible through the façade.
	dev2.ResetStats()
	pool2.ResetStats()
	if err := pool2.Drop(); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.SampleRange(0, 999, 8, rng); err != nil {
		t.Fatal(err)
	}
	if dev2.Stats().Reads == 0 {
		t.Fatal("cold query charged no reads")
	}
}
