// Package emsim exposes the external-memory simulation used by the
// reproduction's I/O-model experiments (E12): a block device with transfer
// counters, an LRU buffer pool, and a disk-layout B+-tree over int64 keys
// that answers independent range sampling queries in O(log_B n + k)
// expected I/Os, versus O(|range|/B) for the scan-and-reservoir baseline.
//
// The device is an in-memory page array — the I/O model charges block
// transfers, not wall time, so counting transfers on a simulated device
// measures exactly what the model predicts (see DESIGN.md, substitutions).
//
// Typical use:
//
//	dev, _ := emsim.NewDevice(4096)
//	pool, _ := emsim.NewPool(dev, 256)
//	tree, _ := emsim.BulkLoad(pool, sortedKeys, 0.8)
//	dev.ResetStats()
//	samples, _ := tree.SampleRange(lo, hi, 16, rng)
//	fmt.Println(dev.Stats().Reads) // I/Os charged to the query
package emsim

import (
	"github.com/irsgo/irs/internal/em"
	"github.com/irsgo/irs/internal/xrand"
)

// PageID identifies a device page.
type PageID = em.PageID

// Device is a simulated block device with transfer counters.
type Device = em.Device

// DeviceStats reports accumulated transfers.
type DeviceStats = em.DeviceStats

// Pool is an LRU buffer pool over a Device.
type Pool = em.Pool

// PoolStats reports buffer pool behaviour.
type PoolStats = em.PoolStats

// Tree is a disk-resident B+-tree over int64 keys with leaf-run sampling.
type Tree = em.Tree

// Iterator walks keys in sorted order across the tree's leaf chain.
type Iterator = em.Iterator

// RNG is the random generator consumed by sampling queries (identical to
// the root package's irs.RNG).
type RNG = xrand.RNG

// Errors re-exported from the simulation.
var (
	ErrEmptyRange   = em.ErrEmptyRange
	ErrInvalidCount = em.ErrInvalidCount
	ErrPageSize     = em.ErrPageSize
	ErrPoolTooTiny  = em.ErrPoolTooTiny
)

// NewRNG returns a deterministic RNG (same stream family as irs.NewRNG).
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// NewDevice creates a device with the given page size in bytes (>= 64).
func NewDevice(pageSize int) (*Device, error) { return em.NewDevice(pageSize) }

// NewPool creates a buffer pool of the given frame capacity (>= 4).
func NewPool(dev *Device, capacity int) (*Pool, error) { return em.NewPool(dev, capacity) }

// New creates an empty tree backed by pool.
func New(pool *Pool) (*Tree, error) { return em.New(pool) }

// BulkLoad builds a tree from sorted keys at the given leaf fill fraction.
func BulkLoad(pool *Pool, keys []int64, fill float64) (*Tree, error) {
	return em.BulkLoad(pool, keys, fill)
}
